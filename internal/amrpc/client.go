package amrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrClientClosed is returned for calls on a closed client.
var ErrClientClosed = errors.New("amrpc: client closed")

// ErrTransport marks connection-level failures (as opposed to application
// errors the remote component returned). Load balancers fail over on it,
// and the client's retry policy retries idempotent calls on it.
var ErrTransport = errors.New("amrpc: transport failure")

// codeTransportLocal is a client-internal marker used when failing pending
// calls; it never travels on the wire.
const codeTransportLocal = "_local-transport"

// RetryPolicy controls transport-failure retries for idempotent calls.
// Application errors (RemoteError) and caller-context cancellation are
// never retried — retrying is for unreachable or flaky transports, not for
// decisions the remote component already made.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call (1 = no
	// retry). Zero means the default of 1.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff, with equal jitter (the
	// sleep is uniformly drawn from [d/2, d]).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means 1s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt. When a request or
	// its response is silently lost in flight, this is what turns an
	// indefinite hang into a fast, retryable failure. Zero disables the
	// per-attempt bound (the call's context still applies).
	AttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// backoffFor returns the jittered sleep before retry attempt a (1-based).
func (p RetryPolicy) backoffFor(a int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < a && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Equal jitter: half deterministic, half uniform — spreads synchronized
	// retries without ever sleeping less than half the schedule.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// clientOptions is the resolved configuration of a Client.
type clientOptions struct {
	dial          func() (net.Conn, error)
	retry         RetryPolicy
	callTimeout   time.Duration
	reconnectBase time.Duration
	reconnectMax  time.Duration
	maxLineBytes  int
}

// ClientOption configures Dial/NewClient.
type ClientOption func(*clientOptions)

// WithDialFunc supplies the function used to establish (and re-establish)
// the connection. Setting it enables automatic reconnect: when the
// connection dies, the next call re-dials under exponential backoff with
// jitter instead of failing forever. Tests use it to route the client
// through a chaosnet injector.
func WithDialFunc(dial func() (net.Conn, error)) ClientOption {
	return func(o *clientOptions) { o.dial = dial }
}

// WithRetry sets the client's default retry policy. It applies only to
// calls made through stubs marked idempotent (WithIdempotent): transport
// failures and per-attempt timeouts are retried, application errors never.
func WithRetry(p RetryPolicy) ClientOption {
	return func(o *clientOptions) { o.retry = p }
}

// WithCallTimeout gives every call without a context deadline this default
// deadline, so a lost frame fails fast instead of hanging forever.
func WithCallTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.callTimeout = d }
}

// WithReconnectBackoff tunes the re-dial schedule (defaults 20ms base, 2s
// cap). Each consecutive dial failure doubles the wait before the next
// dial attempt; a successful dial resets it.
func WithReconnectBackoff(base, max time.Duration) ClientOption {
	return func(o *clientOptions) {
		if base > 0 {
			o.reconnectBase = base
		}
		if max > 0 {
			o.reconnectMax = max
		}
	}
}

// liveConn is one established connection generation. The write side is
// serialized by writeMu; the read side is owned by exactly one readLoop
// goroutine.
type liveConn struct {
	conn    net.Conn
	gen     uint64
	writeMu sync.Mutex
}

// pendingCall tracks one in-flight request: the response channel and the
// connection generation that carries it, so tearing down one connection
// fails exactly the calls it was carrying.
type pendingCall struct {
	ch  chan response
	gen uint64
}

// Client is a connection to an amrpc server. Requests are pipelined: many
// goroutines may invoke concurrently. When constructed with a dial
// function (Dial does this), a broken connection is re-established
// transparently on the next call, under exponential backoff with jitter.
// Construct with Dial or NewClient, then derive per-component stubs with
// Component.
type Client struct {
	opts clientOptions

	mu         sync.Mutex
	cur        *liveConn
	gen        uint64
	nextID     uint64
	pending    map[uint64]pendingCall
	closed     bool
	lastErr    error // why the last connection died / dial failed
	connecting chan struct{}
	dialFails  int
	nextDialAt time.Time

	readers sync.WaitGroup

	stats clientStats
}

// Dial connects to an amrpc server. The returned client re-dials addr
// automatically if the connection later breaks.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	all := append([]ClientOption{WithDialFunc(defaultDialFunc(addr))}, opts...)
	c := newClient(all...)
	// Eager first dial: Dial keeps its historical contract of failing
	// immediately when the server is unreachable.
	if _, err := c.ensureConn(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// defaultDialFunc dials addr over TCP with the self-connection guard.
func defaultDialFunc(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("amrpc: dial %s: %v: %w", addr, err, ErrTransport)
		}
		// Guard against TCP simultaneous-open self-connection: dialing a
		// closed ephemeral port on the same host can connect the socket to
		// itself, which would echo requests back as garbage responses.
		if conn.LocalAddr().String() == conn.RemoteAddr().String() {
			_ = conn.Close()
			return nil, fmt.Errorf("amrpc: dial %s: self-connection: %w", addr, ErrTransport)
		}
		return conn, nil
	}
}

// NewClient wraps an established connection. Without a WithDialFunc option
// the client cannot reconnect: once the connection dies, calls fail.
func NewClient(conn net.Conn, opts ...ClientOption) *Client {
	c := newClient(opts...)
	c.install(conn)
	return c
}

func newClient(opts ...ClientOption) *Client {
	o := clientOptions{
		reconnectBase: 20 * time.Millisecond,
		reconnectMax:  2 * time.Second,
		maxLineBytes:  4 * 1024 * 1024,
	}
	for _, opt := range opts {
		opt(&o)
	}
	o.retry = o.retry.withDefaults()
	return &Client{
		opts:    o,
		pending: make(map[uint64]pendingCall, 16),
	}
}

// install makes conn the current connection and starts its reader.
// Callers must ensure no current connection exists.
func (c *Client) install(conn net.Conn) *liveConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.installLocked(conn)
}

func (c *Client) installLocked(conn net.Conn) *liveConn {
	c.gen++
	if c.gen > 1 {
		c.stats.reconnects.Add(1)
	}
	lc := &liveConn{conn: conn, gen: c.gen}
	c.cur = lc
	c.lastErr = nil
	c.dialFails = 0
	c.readers.Add(1)
	go c.readLoop(lc)
	return lc
}

// ensureConn returns the current connection, dialing (with backoff) if the
// client is disconnected and has a dial function. Concurrent callers
// collapse onto a single dial attempt.
func (c *Client) ensureConn(ctx context.Context) (*liveConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClientClosed
		}
		if c.cur != nil {
			lc := c.cur
			c.mu.Unlock()
			return lc, nil
		}
		if c.opts.dial == nil {
			err := c.lastErr
			c.mu.Unlock()
			if err == nil {
				err = errors.New("amrpc: not connected")
			}
			return nil, fmt.Errorf("amrpc: connection failed: %v: %w", err, ErrTransport)
		}
		if ch := c.connecting; ch != nil {
			// Another goroutine is dialing; wait for its verdict.
			c.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		done := make(chan struct{})
		c.connecting = done
		wait := time.Until(c.nextDialAt)
		c.mu.Unlock()

		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				c.finishDial(done, nil, nil) // release the dial slot
				return nil, ctx.Err()
			}
		}
		conn, err := c.opts.dial()
		lc, cerr := c.finishDial(done, conn, err)
		if cerr != nil {
			return nil, cerr
		}
		if lc != nil {
			return lc, nil
		}
		// Dial failed; surface it (the retry policy may call again).
		return nil, fmt.Errorf("amrpc: reconnect: %v: %w", err, ErrTransport)
	}
}

// finishDial publishes the outcome of a dial attempt and releases waiters.
func (c *Client) finishDial(done chan struct{}, conn net.Conn, err error) (*liveConn, error) {
	c.mu.Lock()
	defer func() {
		c.connecting = nil
		close(done)
		c.mu.Unlock()
	}()
	if c.closed {
		if conn != nil {
			_ = conn.Close()
		}
		return nil, ErrClientClosed
	}
	if conn == nil {
		if err != nil {
			c.lastErr = err
			c.dialFails++
			c.stats.dialFailures.Add(1)
			d := c.opts.reconnectBase << (c.dialFails - 1)
			if d > c.opts.reconnectMax || d <= 0 {
				d = c.opts.reconnectMax
			}
			// Full jitter keeps a thundering herd of reconnecting clients
			// from hammering a recovering server in lockstep.
			c.nextDialAt = time.Now().Add(d/2 + time.Duration(rand.Int63n(int64(d/2)+1)))
		}
		return nil, nil
	}
	return c.installLocked(conn), nil
}

// readLoop dispatches responses of one connection generation to their
// waiting callers, then fails whatever that generation still carried.
func (c *Client) readLoop(lc *liveConn) {
	defer c.readers.Done()
	scanner := bufio.NewScanner(lc.conn)
	// Initial capacity capped at the limit — Scanner only enforces max
	// when growing, so a larger starting buffer would defeat small limits.
	scanner.Buffer(make([]byte, 0, min(64*1024, c.opts.maxLineBytes)), c.opts.maxLineBytes)
	for scanner.Scan() {
		resp, err := decodeResponseLine(scanner.Bytes())
		if err != nil {
			continue // tolerate malformed or corrupted lines; deadlines recover the call
		}
		c.mu.Lock()
		pc, ok := c.pending[resp.ID]
		if ok && pc.gen == lc.gen {
			delete(c.pending, resp.ID)
		} else {
			ok = false
		}
		c.mu.Unlock()
		if ok {
			pc.ch <- *resp
		}
	}
	err := scanner.Err()
	if err == nil {
		err = errors.New("amrpc: connection closed")
	}
	c.teardown(lc, err)
}

// teardown retires a dead connection generation: unregisters it as current
// and fails every pending call it carried.
func (c *Client) teardown(lc *liveConn, err error) {
	_ = lc.conn.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == lc {
		c.cur = nil
		c.lastErr = err
	}
	for id, pc := range c.pending {
		if pc.gen != lc.gen {
			continue
		}
		delete(c.pending, id)
		pc.ch <- response{Err: err.Error(), Code: codeTransportLocal}
	}
}

// Close tears down the connection. Every pending call resolves promptly —
// Close does not depend on the reader goroutine winning any race to fail
// them.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.readers.Wait()
		return nil
	}
	c.closed = true
	cur := c.cur
	c.cur = nil
	// Resolve all pending directly, whatever generation they were on:
	// a reader that lost the race finds the map already drained.
	for id, pc := range c.pending {
		delete(c.pending, id)
		pc.ch <- response{Err: ErrClientClosed.Error(), Code: codeTransportLocal}
	}
	c.mu.Unlock()
	var err error
	if cur != nil {
		err = cur.conn.Close()
	}
	c.readers.Wait()
	return err
}

// call performs one logical request/response exchange, retrying transport
// failures per the client's policy when the call is idempotent.
func (c *Client) call(ctx context.Context, component, method, token string, priority int, fence uint64, idempotent bool, args []any) (any, error) {
	rawArgs, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && c.opts.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.callTimeout)
		defer cancel()
	}
	attempts := 1
	if idempotent {
		attempts = c.opts.retry.MaxAttempts
	}
	c.stats.calls.Add(1)
	var lastErr error
	for a := 1; ; a++ {
		c.stats.attempts.Add(1)
		result, err := c.callOnce(ctx, component, method, token, priority, fence, rawArgs)
		if err == nil {
			return result, nil
		}
		lastErr = err
		if errors.Is(err, ErrTransport) {
			c.stats.transportErrors.Add(1)
		}
		// Only transport-class failures are retryable, only on idempotent
		// calls, and never once the caller's own context has expired.
		if !errors.Is(err, ErrTransport) || a >= attempts || ctx.Err() != nil {
			return nil, err
		}
		c.stats.retries.Add(1)
		d := c.opts.retry.backoffFor(a)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, lastErr
		}
	}
}

// callOnce performs a single attempt: ensure a connection, register the
// pending call, write the frame, await the response or a deadline.
func (c *Client) callOnce(parent context.Context, component, method, token string, priority int, fence uint64, rawArgs []json.RawMessage) (any, error) {
	ctx := parent
	if d := c.opts.retry.AttemptTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, d)
		defer cancel()
	}
	lc, err := c.ensureConn(ctx)
	if err != nil {
		if parent.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
			// Only the per-attempt bound expired — the attempt spent its
			// budget waiting out the reconnect backoff. The caller is still
			// waiting; classify as transport so idempotent calls retry.
			return nil, fmt.Errorf("amrpc: %s.%s: connect attempt timed out: %w", component, method, ErrTransport)
		}
		return nil, fmt.Errorf("amrpc: %s.%s: %w", component, method, err)
	}

	var timeoutMS int64
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if parent.Err() == nil {
				return nil, fmt.Errorf("amrpc: %s.%s: attempt timed out: %w", component, method, ErrTransport)
			}
			return nil, fmt.Errorf("amrpc: %s.%s: %w", component, method, context.DeadlineExceeded)
		}
		timeoutMS = remaining.Milliseconds()
		if timeoutMS == 0 {
			timeoutMS = 1
		}
	}

	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = pendingCall{ch: ch, gen: lc.gen}
	c.mu.Unlock()

	req := request{
		ID:        id,
		Component: component,
		Method:    method,
		Args:      rawArgs,
		Token:     token,
		Priority:  priority,
		TimeoutMS: timeoutMS,
		Fence:     fence,
	}
	line, err := sealRequest(&req)
	if err != nil {
		c.unregister(id)
		return nil, fmt.Errorf("amrpc: encode %s.%s: %w", component, method, err)
	}
	lc.writeMu.Lock()
	_, err = lc.conn.Write(append(line, '\n'))
	lc.writeMu.Unlock()
	if err != nil {
		c.unregister(id)
		c.teardown(lc, err)
		return nil, fmt.Errorf("amrpc: send %s.%s: %v: %w", component, method, err, ErrTransport)
	}

	select {
	case resp := <-ch:
		if resp.Code == codeTransportLocal {
			return nil, fmt.Errorf("amrpc: %s.%s: %s: %w", component, method, resp.Err, ErrTransport)
		}
		if resp.Err != "" {
			return nil, &RemoteError{Code: resp.Code, Msg: resp.Err, RetryAfterMS: resp.RetryAfterMS}
		}
		if len(resp.Result) == 0 {
			return nil, nil
		}
		var v any
		if err := json.Unmarshal(resp.Result, &v); err != nil {
			return nil, fmt.Errorf("amrpc: decode result of %s.%s: %w", component, method, err)
		}
		return v, nil
	case <-ctx.Done():
		c.unregister(id)
		if parent.Err() != nil {
			// The caller's own deadline/cancellation: never retried.
			return nil, fmt.Errorf("amrpc: %s.%s: %w", component, method, parent.Err())
		}
		// Only the per-attempt bound expired — the request or response was
		// probably lost in flight. Classify as transport so idempotent
		// calls retry.
		return nil, fmt.Errorf("amrpc: %s.%s: attempt timed out: %w", component, method, ErrTransport)
	}
}

// unregister drops a pending call registration if still present.
func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// PendingCalls reports how many calls are awaiting responses — in-flight
// accounting for tests and monitoring.
func (c *Client) PendingCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Connected reports whether the client currently holds a live connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur != nil
}

// Stub is a remote component handle implementing the same Invoker
// interface as a local proxy.
type Stub struct {
	client     *Client
	component  string
	token      string
	priority   int
	fence      uint64
	idempotent bool
}

// StubOption configures Component.
type StubOption func(*Stub)

// WithToken attaches a bearer token to every invocation from this stub.
func WithToken(token string) StubOption {
	return func(s *Stub) { s.token = token }
}

// WithPriority sets the wait-queue priority of every invocation from this
// stub.
func WithPriority(p int) StubOption {
	return func(s *Stub) { s.priority = p }
}

// WithFenceTerm stamps every invocation from this stub with a
// domain-ownership lease term. Cluster-internal traffic (forwarded
// admissions, wake notifications) uses it so a receiver that no longer
// holds the domain's lease at this exact term refuses the call with
// naming.ErrStaleTerm instead of acting on stale ownership.
func WithFenceTerm(term uint64) StubOption {
	return func(s *Stub) { s.fence = term }
}

// WithIdempotent declares every invocation from this stub safe to repeat:
// transport failures (and per-attempt timeouts) are retried under the
// client's RetryPolicy. Application errors are never retried regardless.
func WithIdempotent() StubOption {
	return func(s *Stub) { s.idempotent = true }
}

// Component returns an invoker for the named remote component.
func (c *Client) Component(name string, opts ...StubOption) *Stub {
	s := &Stub{client: c, component: name}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Invoke performs a guarded invocation on the remote component.
func (s *Stub) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	return s.client.call(ctx, s.component, method, s.token, s.priority, s.fence, s.idempotent, args)
}
