package amrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/ticket"
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// startServer serves the given proxies on an ephemeral port and returns
// the address plus a cleanup.
func startServer(t *testing.T, proxies ...*proxy.Proxy) string {
	t.Helper()
	srv := NewServer()
	for _, p := range proxies {
		if err := srv.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if serr := srv.Serve(ln); serr != nil {
			t.Errorf("serve: %v", serr)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func newEchoProxy(t *testing.T, name string) *proxy.Proxy {
	t.Helper()
	p := proxy.New(moderator.New(name))
	if err := p.Bind("echo", func(inv *aspect.Invocation) (any, error) {
		return inv.Arg(0), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("sum", func(inv *aspect.Invocation) (any, error) {
		a, err := inv.ArgInt(0)
		if err != nil {
			return nil, err
		}
		b, err := inv.ArgInt(1)
		if err != nil {
			return nil, err
		}
		return a + b, nil
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegisterValidation(t *testing.T) {
	srv := NewServer()
	if err := srv.Register(nil); err == nil {
		t.Error("nil proxy must error")
	}
	p := newEchoProxy(t, "svc")
	if err := srv.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(p); err == nil {
		t.Error("duplicate register must error")
	}
}

func TestRoundTrip(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "svc"))
	c := dialClient(t, addr)
	stub := c.Component("svc")

	got, err := stub.Invoke(context.Background(), "echo", "hello")
	if err != nil || got != "hello" {
		t.Fatalf("echo = %v, %v", got, err)
	}
	// Numbers arrive as float64 over JSON; ArgInt coercion on the server
	// absorbs it.
	got, err = stub.Invoke(context.Background(), "sum", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 5 {
		t.Fatalf("sum = %v", got)
	}
	// Nil result round-trips as nil.
	got, err = stub.Invoke(context.Background(), "echo")
	if err != nil || got != nil {
		t.Fatalf("nil echo = %v, %v", got, err)
	}
}

func TestUnknownComponentAndMethod(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "svc"))
	c := dialClient(t, addr)

	_, err := c.Component("ghost").Invoke(context.Background(), "echo", "x")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeNoComponent {
		t.Fatalf("ghost component: %v", err)
	}
	_, err = c.Component("svc").Invoke(context.Background(), "ghost")
	if !errors.Is(err, proxy.ErrNoSuchMethod) {
		t.Fatalf("ghost method must map to ErrNoSuchMethod: %v", err)
	}
}

func TestSentinelErrorsCrossTheWire(t *testing.T) {
	// An auth-guarded component: remote anonymous calls must surface
	// auth.ErrUnauthenticated via errors.Is.
	store := auth.NewTokenStore()
	tok := store.Issue("alice", "client")
	p := newEchoProxy(t, "secure")
	if err := p.Moderator().Register("echo", aspect.KindAuthentication,
		auth.Authenticator("auth", store)); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, p)
	c := dialClient(t, addr)

	_, err := c.Component("secure").Invoke(context.Background(), "echo", "x")
	if !errors.Is(err, auth.ErrUnauthenticated) {
		t.Fatalf("anonymous: %v", err)
	}
	got, err := c.Component("secure", WithToken(tok)).Invoke(context.Background(), "echo", "x")
	if err != nil || got != "x" {
		t.Fatalf("authenticated: %v, %v", got, err)
	}
}

func TestPriorityTravels(t *testing.T) {
	p := proxy.New(moderator.New("svc"))
	var seen int
	if err := p.Moderator().Register("m", aspect.KindScheduling,
		aspect.New("spy", aspect.KindScheduling, func(inv *aspect.Invocation) aspect.Verdict {
			seen = inv.Priority
			return aspect.Resume
		}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, p)
	c := dialClient(t, addr)
	if _, err := c.Component("svc", WithPriority(7)).Invoke(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Errorf("priority = %d, want 7", seen)
	}
}

func TestConcurrentPipelinedCalls(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "svc"))
	c := dialClient(t, addr)
	stub := c.Component("svc")
	var wg sync.WaitGroup
	const callers, per = 8, 25
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				want := fmt.Sprintf("msg-%d-%d", w, k)
				got, err := stub.Invoke(context.Background(), "echo", want)
				if err != nil || got != want {
					t.Errorf("echo = %v, %v (want %s)", got, err, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestBlockedRemoteCallRespectsClientContext(t *testing.T) {
	// A remote call parked by a Block-forever guard must return when the
	// client's context expires (the server cancels on connection close is
	// separate; here the context travels with the pending call).
	p := proxy.New(moderator.New("stuck"))
	gate := aspect.New("gate", aspect.KindSynchronization,
		func(*aspect.Invocation) aspect.Verdict { return aspect.Block }, nil)
	if err := p.Moderator().Register("m", aspect.KindSynchronization, gate); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, p)
	c := dialClient(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Component("stuck").Invoke(ctx, "m")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline, got %v", err)
	}
}

func TestRemoteGuardedTicketFlow(t *testing.T) {
	// The paper's full distributed scenario: a guarded ticket server hosted
	// remotely, concurrent remote producers and consumers, nothing lost.
	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, g.Proxy())
	c := dialClient(t, addr)
	stub := c.Component(ticket.ComponentName)

	const producers, per = 3, 10
	total := producers * per
	var wg sync.WaitGroup
	got := make(chan string, total)
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				id := fmt.Sprintf("t-%d-%d", w, k)
				if _, err := stub.Invoke(context.Background(), ticket.MethodOpen, id, "s"); err != nil {
					t.Errorf("open: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				res, err := stub.Invoke(context.Background(), ticket.MethodAssign)
				if err != nil {
					t.Errorf("assign: %v", err)
					return
				}
				m, ok := res.(map[string]any)
				if !ok {
					t.Errorf("assign result type %T", res)
					return
				}
				got <- m["id"].(string)
			}
		}()
	}
	wg.Wait()
	close(got)
	seen := make(map[string]bool, total)
	for id := range got {
		if seen[id] {
			t.Errorf("duplicate %s", id)
		}
		seen[id] = true
	}
	if len(seen) != total {
		t.Errorf("distinct = %d, want %d", len(seen), total)
	}
}

func TestClientFailsPendingOnServerClose(t *testing.T) {
	p := proxy.New(moderator.New("stuck"))
	gate := aspect.New("gate", aspect.KindSynchronization,
		func(*aspect.Invocation) aspect.Verdict { return aspect.Block }, nil)
	if err := p.Moderator().Register("m", aspect.KindSynchronization, gate); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.Register(p); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	c := dialClient(t, ln.Addr().String())

	callErr := make(chan error, 1)
	go func() {
		_, err := c.Component("stuck").Invoke(context.Background(), "m")
		callErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call park server-side
	srv.Close()
	<-done
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("pending call must fail on server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call never failed")
	}
	// Subsequent calls fail fast.
	if _, err := c.Component("stuck").Invoke(context.Background(), "m"); err == nil {
		t.Fatal("calls on dead connection must fail")
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "svc"))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := c.Component("svc").Invoke(context.Background(), "echo", "x"); !errors.Is(err, ErrClientClosed) {
		if err == nil {
			t.Fatal("invoke after close must fail")
		}
	}
}
