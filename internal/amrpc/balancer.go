package amrpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrNoEndpoints is returned when the balancer's resolver yields nothing.
var ErrNoEndpoints = errors.New("amrpc: no endpoints")

// Resolver yields the current endpoints of a replicated component. The
// naming package's PrefixResolver adapts a naming client; tests may use a
// static function.
type Resolver func() ([]string, error)

// StaticResolver returns a Resolver over a fixed endpoint list.
func StaticResolver(addrs ...string) Resolver {
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return func() ([]string, error) { return cp, nil }
}

// Balancer is a client-side load balancer over a replicated component —
// the "load balancing" interaction requirement of the paper's Section 2,
// provided as infrastructure rather than woven into clients. It implements
// the same Invoker interface as a proxy or a single-connection stub:
// invocations rotate round-robin across the resolved endpoints, transport
// failures fail over to the next endpoint, and broken connections are
// dropped from the pool (to be re-dialed when the endpoint reappears).
//
// Application-level errors — anything the remote component or its aspects
// decided, carried as a RemoteError — are returned as-is, never retried:
// failover is for unreachable replicas, not for aborted invocations.
type Balancer struct {
	component string
	resolve   Resolver
	opts      []StubOption

	mu      sync.Mutex
	clients map[string]*Client
	next    int
	closed  bool
}

// NewBalancer creates a balancer for the named component.
func NewBalancer(component string, resolve Resolver, opts ...StubOption) (*Balancer, error) {
	if component == "" {
		return nil, errors.New("amrpc: balancer: empty component")
	}
	if resolve == nil {
		return nil, errors.New("amrpc: balancer: nil resolver")
	}
	return &Balancer{
		component: component,
		resolve:   resolve,
		opts:      opts,
		clients:   make(map[string]*Client, 4),
	}, nil
}

// Invoke performs one guarded invocation on some live replica.
func (b *Balancer) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	addrs, err := b.resolve()
	if err != nil {
		return nil, fmt.Errorf("amrpc: balancer %s: resolve: %w", b.component, err)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("amrpc: balancer %s: %w", b.component, ErrNoEndpoints)
	}
	b.mu.Lock()
	start := b.next
	b.next++
	b.mu.Unlock()

	var lastErr error
	for k := 0; k < len(addrs); k++ {
		addr := addrs[(start+k)%len(addrs)]
		client, err := b.clientFor(addr)
		if err != nil {
			lastErr = err
			continue
		}
		result, err := client.Component(b.component, b.opts...).Invoke(ctx, method, args...)
		if err == nil {
			return result, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			// The replica was reached and answered: this is the
			// component's (or its aspects') decision, not a transport
			// fault. No failover.
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, err
		}
		// Transport-level failure: drop the connection and try the next
		// replica.
		b.dropClient(addr, client)
		lastErr = err
	}
	return nil, fmt.Errorf("amrpc: balancer %s: all %d endpoint(s) failed: %w",
		b.component, len(addrs), lastErr)
}

// clientFor returns (dialing if necessary) the pooled client for addr.
func (b *Balancer) clientFor(addr string) (*Client, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c, ok := b.clients[addr]; ok {
		b.mu.Unlock()
		return c, nil
	}
	b.mu.Unlock()

	// Dial outside the lock; racing dials are reconciled below.
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		_ = c.Close()
		return nil, ErrClientClosed
	}
	if existing, ok := b.clients[addr]; ok {
		_ = c.Close()
		return existing, nil
	}
	b.clients[addr] = c
	return c, nil
}

// dropClient removes a broken connection from the pool.
func (b *Balancer) dropClient(addr string, c *Client) {
	b.mu.Lock()
	if b.clients[addr] == c {
		delete(b.clients, addr)
	}
	b.mu.Unlock()
	_ = c.Close()
}

// Endpoints returns the addresses with live pooled connections (sorted by
// map iteration is not guaranteed; callers needing order should sort).
func (b *Balancer) Endpoints() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.clients))
	for addr := range b.clients {
		out = append(out, addr)
	}
	return out
}

// Close tears down every pooled connection.
func (b *Balancer) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	clients := make([]*Client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.clients = map[string]*Client{}
	b.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
}
