package amrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/aspects/fault"
)

// ErrNoEndpoints is returned when the balancer's resolver yields nothing.
var ErrNoEndpoints = errors.New("amrpc: no endpoints")

// Resolver yields the current endpoints of a replicated component. The
// naming package's PrefixResolver adapts a naming client; tests may use a
// static function.
type Resolver func() ([]string, error)

// StaticResolver returns a Resolver over a fixed endpoint list.
func StaticResolver(addrs ...string) Resolver {
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return func() ([]string, error) { return cp, nil }
}

// BreakerState is one backend's circuit-breaker state.
type BreakerState int

const (
	// BreakerClosed: the backend is healthy; traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive transport failures tripped the breaker;
	// the backend is skipped until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and a single probe call is
	// in flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// backendHealth is the per-endpoint breaker record. All fields are guarded
// by the balancer mutex.
type backendHealth struct {
	state   BreakerState
	fails   int       // consecutive transport failures
	until   time.Time // when open: earliest half-open probe time
	probing bool      // a half-open probe is in flight
}

// BalancerConfig configures NewBalancerWith. The zero value of every field
// has a sensible default; only Component and Resolver are required.
type BalancerConfig struct {
	Component string
	Resolver  Resolver
	// StubOptions apply to every per-endpoint stub (token, priority,
	// idempotency).
	StubOptions []StubOption
	// ClientOptions apply to every pooled per-endpoint client (retry
	// policy, call timeout, reconnect backoff).
	ClientOptions []ClientOption
	// DialConn replaces the raw connection dialer — the chaosnet hook.
	// Default: TCP dial with the self-connection guard.
	DialConn func(addr string) (net.Conn, error)
	// BreakerThreshold is the number of consecutive transport failures
	// that trips a backend's breaker open (default 3; negative disables
	// the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before allowing
	// a half-open probe (default 500ms).
	BreakerCooldown time.Duration
	// Now is the balancer's clock; tests inject a fake one so breaker
	// transitions need no real sleeps.
	Now func() time.Time
}

// Balancer is a client-side load balancer over a replicated component —
// the "load balancing" interaction requirement of the paper's Section 2,
// provided as infrastructure rather than woven into clients. It implements
// the same Invoker interface as a proxy or a single-connection stub.
//
// Invocations rotate round-robin across the resolved endpoints, preferring
// healthy backends: each endpoint carries a circuit breaker that opens
// after BreakerThreshold consecutive transport failures, diverting traffic
// to the remaining backends, and half-opens after the cooldown to let a
// single probe rediscover a revived backend. Transport failures fail over
// to the next candidate within the same Invoke.
//
// Application-level errors — anything the remote component or its aspects
// decided, carried as a RemoteError — are returned as-is, never retried:
// failover is for unreachable replicas, not for aborted invocations. A
// RemoteError also counts as backend health (the replica was reached and
// answered), so aspect-level rejections never trip the breaker.
type Balancer struct {
	component string
	resolve   Resolver
	stubOpts  []StubOption
	cliOpts   []ClientOption
	dialConn  func(addr string) (net.Conn, error)
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu      sync.Mutex
	clients map[string]*Client
	health  map[string]*backendHealth
	next    int
	closed  bool

	stats balancerStats
}

// NewBalancer creates a balancer for the named component with default
// breaker settings.
func NewBalancer(component string, resolve Resolver, opts ...StubOption) (*Balancer, error) {
	return NewBalancerWith(BalancerConfig{
		Component:   component,
		Resolver:    resolve,
		StubOptions: opts,
	})
}

// NewBalancerWith creates a balancer from an explicit configuration.
func NewBalancerWith(cfg BalancerConfig) (*Balancer, error) {
	if cfg.Component == "" {
		return nil, errors.New("amrpc: balancer: empty component")
	}
	if cfg.Resolver == nil {
		return nil, errors.New("amrpc: balancer: nil resolver")
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 500 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.DialConn == nil {
		cfg.DialConn = func(addr string) (net.Conn, error) {
			return defaultDialFunc(addr)()
		}
	}
	return &Balancer{
		component: cfg.Component,
		resolve:   cfg.Resolver,
		stubOpts:  cfg.StubOptions,
		cliOpts:   cfg.ClientOptions,
		dialConn:  cfg.DialConn,
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
		now:       cfg.Now,
		clients:   make(map[string]*Client, 4),
		health:    make(map[string]*backendHealth, 4),
	}, nil
}

// healthFor returns (creating if needed) addr's breaker record. Callers
// hold b.mu.
func (b *Balancer) healthFor(addr string) *backendHealth {
	h, ok := b.health[addr]
	if !ok {
		h = &backendHealth{}
		b.health[addr] = h
	}
	return h
}

// pickOrder returns the candidate endpoints for one invocation: half-open
// probes first (the canary request that rediscovers a revived backend —
// if the probe fails, the same invocation fails over to a healthy backend),
// then healthy backends rotated round-robin. Open breakers whose cooldown
// has not elapsed are excluded; endpoints with a probe already in flight
// are excluded too (one probe at a time). probes reports which candidates
// are half-open probes, so Invoke can mark them at attempt time.
func (b *Balancer) pickOrder(addrs []string) (order []string, probes map[string]bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	start := b.next
	b.next++

	var healthy, probe []string
	for k := 0; k < len(addrs); k++ {
		addr := addrs[(start+k)%len(addrs)]
		h := b.healthFor(addr)
		switch {
		case b.threshold < 0 || h.state == BreakerClosed:
			healthy = append(healthy, addr)
		case h.probing:
			// A probe is already testing this backend; stay away.
		case !now.Before(h.until):
			// Open and cooled down: eligible for a single probe.
			probe = append(probe, addr)
		}
	}
	probes = make(map[string]bool, len(probe))
	for _, addr := range probe {
		probes[addr] = true
	}
	return append(probe, healthy...), probes
}

// beginProbe transitions addr to half-open with a probe in flight. It
// reports false if another invocation won the race to probe first.
func (b *Balancer) beginProbe(addr string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.healthFor(addr)
	if h.state == BreakerClosed {
		return true // someone already closed it; plain call, not a probe
	}
	if h.probing {
		return false
	}
	h.state = BreakerHalfOpen
	h.probing = true
	b.stats.probes.Add(1)
	return true
}

// onSuccess records a successful exchange with addr: the breaker closes.
func (b *Balancer) onSuccess(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.healthFor(addr)
	if h.state != BreakerClosed {
		b.stats.recoveries.Add(1)
	}
	h.state = BreakerClosed
	h.fails = 0
	h.probing = false
}

// onFailure records a transport failure against addr, tripping or
// re-opening the breaker as warranted.
func (b *Balancer) onFailure(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.healthFor(addr)
	h.fails++
	if h.state == BreakerHalfOpen {
		// The probe failed: straight back to open for another cooldown.
		h.state = BreakerOpen
		h.probing = false
		h.until = b.now().Add(b.cooldown)
		b.stats.breakerTrips.Add(1)
		return
	}
	if b.threshold >= 0 && h.fails >= b.threshold {
		if h.state != BreakerOpen {
			b.stats.breakerTrips.Add(1)
		}
		h.state = BreakerOpen
		h.until = b.now().Add(b.cooldown)
	}
}

// releaseProbe clears the probing flag without an outcome (e.g. the caller
// context expired before the probe resolved).
func (b *Balancer) releaseProbe(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.healthFor(addr)
	if h.probing {
		h.probing = false
	}
}

// Invoke performs one guarded invocation on some live replica.
func (b *Balancer) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	addrs, err := b.resolve()
	if err != nil {
		return nil, fmt.Errorf("amrpc: balancer %s: resolve: %w", b.component, err)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("amrpc: balancer %s: %w", b.component, ErrNoEndpoints)
	}
	order, probes := b.pickOrder(addrs)
	if len(order) == 0 {
		// Every breaker is open (or probing): fail fast rather than pile
		// more load on backends that are already down.
		return nil, fmt.Errorf("amrpc: balancer %s: all %d endpoint(s) circuit-open: %w",
			b.component, len(addrs), fault.ErrCircuitOpen)
	}

	b.stats.invokes.Add(1)
	var lastErr error
	attempted := 0
	for _, addr := range order {
		if probes[addr] && !b.beginProbe(addr) {
			continue // another invocation is already probing this backend
		}
		attempted++
		if attempted > 1 {
			b.stats.failovers.Add(1)
		}
		client, err := b.clientFor(addr)
		if err != nil {
			b.onFailure(addr)
			lastErr = err
			continue
		}
		result, err := client.Component(b.component, b.stubOpts...).Invoke(ctx, method, args...)
		if err == nil {
			b.onSuccess(addr)
			return result, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			// The replica was reached and answered: this is the
			// component's (or its aspects') decision, not a transport
			// fault. The backend is healthy; no failover.
			b.onSuccess(addr)
			return nil, err
		}
		if ctx.Err() != nil {
			// The caller gave up; that says nothing about the backend.
			if probes[addr] {
				b.releaseProbe(addr)
			}
			return nil, err
		}
		// Transport-level failure: count it, drop the connection, and try
		// the next candidate.
		b.onFailure(addr)
		b.dropClient(addr, client)
		lastErr = err
	}
	if lastErr == nil {
		// Every candidate was skipped (probe races): equivalent to all-open.
		return nil, fmt.Errorf("amrpc: balancer %s: all %d endpoint(s) circuit-open: %w",
			b.component, len(addrs), fault.ErrCircuitOpen)
	}
	return nil, fmt.Errorf("amrpc: balancer %s: all %d candidate endpoint(s) failed: %w",
		b.component, len(order), lastErr)
}

// Health returns the current breaker state per known endpoint.
func (b *Balancer) Health() map[string]BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]BreakerState, len(b.health))
	for addr, h := range b.health {
		out[addr] = h.state
	}
	return out
}

// clientFor returns (dialing if necessary) the pooled client for addr.
func (b *Balancer) clientFor(addr string) (*Client, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c, ok := b.clients[addr]; ok {
		b.mu.Unlock()
		return c, nil
	}
	b.mu.Unlock()

	// Dial outside the lock; racing dials are reconciled below.
	conn, err := b.dialConn(addr)
	if err != nil {
		if !errors.Is(err, ErrTransport) {
			err = fmt.Errorf("amrpc: dial %s: %v: %w", addr, err, ErrTransport)
		}
		return nil, err
	}
	addrCopy := addr
	opts := append([]ClientOption{WithDialFunc(func() (net.Conn, error) {
		return b.dialConn(addrCopy)
	})}, b.cliOpts...)
	c := NewClient(conn, opts...)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		_ = c.Close()
		return nil, ErrClientClosed
	}
	if existing, ok := b.clients[addr]; ok {
		_ = c.Close()
		return existing, nil
	}
	b.clients[addr] = c
	return c, nil
}

// dropClient removes a broken connection from the pool.
func (b *Balancer) dropClient(addr string, c *Client) {
	b.mu.Lock()
	if b.clients[addr] == c {
		delete(b.clients, addr)
	}
	b.mu.Unlock()
	_ = c.Close()
}

// Endpoints returns the addresses with live pooled connections (map
// iteration order; callers needing order should sort).
func (b *Balancer) Endpoints() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.clients))
	for addr := range b.clients {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Close tears down every pooled connection.
func (b *Balancer) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	clients := make([]*Client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.clients = map[string]*Client{}
	b.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
}
