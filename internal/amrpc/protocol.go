// Package amrpc is the distribution substrate of the framework: a small
// JSON-over-TCP RPC layer through which a remote client invokes the
// participating methods of a guarded component. The aspects run on the
// server, around the functional component, exactly as they do for local
// callers — the client stub implements the same Invoker interface as the
// local proxy, giving the location transparency the paper lists among the
// interaction requirements (Section 2).
//
// The wire protocol is newline-delimited JSON. Each request carries the
// component, the method, positional arguments, and metadata (bearer token,
// wait-queue priority); each response carries the result or a coded error
// that the client rehydrates so errors.Is against the framework's sentinel
// errors keeps working across the network.
package amrpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/fault"
	"repro/internal/aspects/sched"
	"repro/internal/naming"
	"repro/internal/proxy"
)

// request is one wire request.
type request struct {
	ID        uint64            `json:"id"`
	Component string            `json:"component"`
	Method    string            `json:"method"`
	Args      []json.RawMessage `json:"args,omitempty"`
	Token     string            `json:"token,omitempty"`
	Priority  int               `json:"priority,omitempty"`
	// TimeoutMS propagates the client context's remaining deadline so a
	// server-side invocation blocked on a wait queue is released when the
	// caller has certainly stopped caring.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fence carries a domain-ownership lease term on cluster-internal
	// traffic (forwarded admissions, wake notifications). Zero means
	// unfenced; a nonzero fence obliges the receiver to hold the target
	// domain's lease at exactly this term or refuse with CodeStaleTerm.
	Fence uint64 `json:"fence,omitempty"`
	// Sum is an optional CRC-32 (IEEE) of the frame marshalled with
	// Sum=0. A zero Sum means "unsigned" (foreign or legacy peers); a
	// nonzero Sum that fails verification means the frame was corrupted
	// in flight and the receiver must discard it without acting on any
	// field — including ID, which can itself be corrupt.
	Sum uint32 `json:"sum,omitempty"`
}

// response is one wire response.
type response struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Err    string          `json:"err,omitempty"`
	Code   string          `json:"code,omitempty"`
	// RetryAfterMS accompanies CodeOverloaded: the server's hint for how
	// long the client should back off before resubmitting. Zero means the
	// server offered no hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Sum mirrors request.Sum: frame integrity for the return path.
	Sum uint32 `json:"sum,omitempty"`
}

// errChecksum marks a frame whose checksum did not verify. Receivers drop
// such frames silently: no field of a corrupt frame can be trusted, so the
// sender recovers by deadline + retry rather than by a correlated error.
var errChecksum = errors.New("amrpc: frame checksum mismatch")

// sealRequest marshals req with its integrity checksum filled in. The
// checksum covers the frame as marshalled with Sum=0; Go's struct
// marshalling is deterministic (fixed field order, RawMessage verbatim), so
// the receiver can re-derive the covered bytes exactly.
func sealRequest(req *request) ([]byte, error) {
	req.Sum = 0
	base, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	req.Sum = crc32.ChecksumIEEE(base)
	return json.Marshal(req)
}

// sealResponse is sealRequest for the return path.
func sealResponse(resp *response) ([]byte, error) {
	resp.Sum = 0
	base, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	resp.Sum = crc32.ChecksumIEEE(base)
	return json.Marshal(resp)
}

// decodeRequestLine parses one wire line into a request, verifying the
// integrity checksum when present. Unsigned frames (Sum==0) are accepted
// for compatibility with hand-rolled peers.
func decodeRequestLine(line []byte) (*request, error) {
	var req request
	if err := json.Unmarshal(line, &req); err != nil {
		return nil, err
	}
	if req.Sum != 0 {
		want := req.Sum
		req.Sum = 0
		base, err := json.Marshal(&req)
		req.Sum = want
		if err != nil || crc32.ChecksumIEEE(base) != want {
			return nil, errChecksum
		}
	}
	return &req, nil
}

// decodeResponseLine is decodeRequestLine for the return path.
func decodeResponseLine(line []byte) (*response, error) {
	var resp response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, err
	}
	if resp.Sum != 0 {
		want := resp.Sum
		resp.Sum = 0
		base, err := json.Marshal(&resp)
		resp.Sum = want
		if err != nil || crc32.ChecksumIEEE(base) != want {
			return nil, errChecksum
		}
	}
	return &resp, nil
}

// Error codes carried on the wire so sentinel errors survive the boundary.
const (
	CodeAborted         = "aborted"
	CodeUnauthenticated = "unauthenticated"
	CodeDenied          = "permission-denied"
	CodeShed            = "shed"
	CodeCircuitOpen     = "circuit-open"
	CodeBulkheadFull    = "bulkhead-full"
	CodeNoMethod        = "no-method"
	CodeNoComponent     = "no-component"
	CodeCancelled       = "cancelled"
	CodeDeadline        = "deadline"
	CodeBadRequest      = "bad-request"
	CodeInternal        = "internal"
	CodeStaleTerm       = "stale-term"
	// CodeOverloaded marks a request the server refused before admission:
	// either its connection's work queue was full, or the admission-aware
	// shed policy judged the target domain too deep to park another
	// caller. The response may carry a retry-after hint.
	CodeOverloaded = "overloaded"
)

// ErrOverloaded is the sentinel behind CodeOverloaded: the server shed the
// request before it reached the moderator, so no aspect saw it and no
// guard state changed — always safe to retry after backing off.
var ErrOverloaded = errors.New("amrpc: server overloaded")

// RemoteError is an application error transported over the RPC boundary.
// It unwraps to the framework sentinel matching its code, so errors.Is
// works transparently for remote callers.
type RemoteError struct {
	Code string
	Msg  string
	// RetryAfterMS is the server's backoff hint on CodeOverloaded
	// rejections; zero when the server offered none.
	RetryAfterMS int64
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("amrpc: remote error (%s): %s", e.Code, e.Msg)
}

// Unwrap maps the code back to the local sentinel.
func (e *RemoteError) Unwrap() error {
	if s, ok := codeToSentinel[e.Code]; ok {
		return s
	}
	return nil
}

var codeToSentinel = map[string]error{
	CodeAborted:         aspect.ErrAborted,
	CodeUnauthenticated: auth.ErrUnauthenticated,
	CodeDenied:          auth.ErrPermissionDenied,
	CodeShed:            sched.ErrShed,
	CodeCircuitOpen:     fault.ErrCircuitOpen,
	CodeBulkheadFull:    fault.ErrBulkheadFull,
	CodeNoMethod:        proxy.ErrNoSuchMethod,
	CodeCancelled:       context.Canceled,
	CodeDeadline:        context.DeadlineExceeded,
	CodeStaleTerm:       naming.ErrStaleTerm,
	CodeOverloaded:      ErrOverloaded,
}

// codeFor classifies a server-side error for the wire.
func codeFor(err error) string {
	switch {
	case errors.Is(err, auth.ErrUnauthenticated):
		return CodeUnauthenticated
	case errors.Is(err, auth.ErrPermissionDenied):
		return CodeDenied
	case errors.Is(err, sched.ErrShed):
		return CodeShed
	case errors.Is(err, fault.ErrCircuitOpen):
		return CodeCircuitOpen
	case errors.Is(err, fault.ErrBulkheadFull):
		return CodeBulkheadFull
	case errors.Is(err, proxy.ErrNoSuchMethod):
		return CodeNoMethod
	case errors.Is(err, context.Canceled):
		return CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, naming.ErrStaleTerm):
		return CodeStaleTerm
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, aspect.ErrAborted):
		return CodeAborted
	default:
		return CodeInternal
	}
}

// encodeArgs marshals positional arguments for the wire.
func encodeArgs(args []any) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, len(args))
	for i, a := range args {
		b, err := json.Marshal(a)
		if err != nil {
			return nil, fmt.Errorf("amrpc: encode arg %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// decodeArgs unmarshals wire arguments into generic values (numbers become
// float64, objects become map[string]any — the invocation's coercion
// helpers absorb this).
func decodeArgs(raw []json.RawMessage) ([]any, error) {
	out := make([]any, len(raw))
	for i, r := range raw {
		var v any
		if err := json.Unmarshal(r, &v); err != nil {
			return nil, fmt.Errorf("amrpc: decode arg %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
