package amrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/aspect"
)

// TestMalformedRequestGetsBadRequest writes raw garbage at the wire level
// and expects a coded error response rather than a dropped connection.
func TestMalformedRequestGetsBadRequest(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "svc"))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(conn)
	if !scanner.Scan() {
		t.Fatalf("no response to malformed request: %v", scanner.Err())
	}
	var resp response
	if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
		t.Fatalf("response not json: %v", err)
	}
	if resp.Code != CodeBadRequest {
		t.Errorf("code = %q, want %q", resp.Code, CodeBadRequest)
	}

	// The connection must still work for a valid request afterwards.
	req := request{ID: 1, Component: "svc", Method: "echo", Args: []json.RawMessage{json.RawMessage(`"ok"`)}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(b, '\n')); err != nil {
		t.Fatal(err)
	}
	if !scanner.Scan() {
		t.Fatalf("no response to valid request: %v", scanner.Err())
	}
	var resp2 response
	if err := json.Unmarshal(scanner.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.ID != 1 || resp2.Err != "" {
		t.Errorf("valid follow-up failed: %+v", resp2)
	}
}

// TestUndecodableArgIsBadRequest sends structurally valid JSON whose args
// cannot decode.
func TestUndecodableArgIsBadRequest(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "svc"))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// args entry is invalid JSON inside RawMessage — construct by hand.
	line := `{"id":9,"component":"svc","method":"echo","args":[{]}` + "\n"
	if _, err := conn.Write([]byte(line)); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(conn)
	if !scanner.Scan() {
		t.Fatalf("no response: %v", scanner.Err())
	}
	var resp response
	if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeBadRequest {
		t.Errorf("code = %q, want %q", resp.Code, CodeBadRequest)
	}
}

// TestRemoteErrorUnwrapUnknownCode ensures unknown codes do not unwrap to
// anything (and do not panic errors.Is).
func TestRemoteErrorUnwrapUnknownCode(t *testing.T) {
	e := &RemoteError{Code: "alien", Msg: "??"}
	if e.Unwrap() != nil {
		t.Error("unknown code must unwrap to nil")
	}
	if e.Error() == "" {
		t.Error("empty error text")
	}
}

// TestServerCloseIdempotent double-closes and then rejects Serve.
func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer()
	srv.Close()
	srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve after Close must error")
	}
}

// TestUnencodableResultIsInternal returns a value JSON cannot marshal.
func TestUnencodableResultIsInternal(t *testing.T) {
	p := newEchoProxy(t, "svc2")
	if err := p.Bind("chan", func(*aspect.Invocation) (any, error) {
		return make(chan int), nil // unencodable
	}); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, p)
	c := dialClient(t, addr)
	_, err := c.Component("svc2").Invoke(context.Background(), "chan")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeInternal {
		t.Fatalf("want internal code, got %v", err)
	}
}
