package amrpc

// Tests for the pipelined server: the bounded per-connection worker pool
// (one pipelining client cannot exceed MaxConcurrentPerConn in-flight
// handlers), the CodeOverloaded queue-full rejection, the admission-aware
// shed policy with its retry-after hint, and the coalescing response
// writer's accounting.

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// startServerOpts is startServer with server options.
func startServerOpts(t *testing.T, srv *Server, proxies ...*proxy.Proxy) string {
	t.Helper()
	for _, p := range proxies {
		if err := srv.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if serr := srv.Serve(ln); serr != nil {
			t.Errorf("serve: %v", serr)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// TestWorkerPoolBound pins the Serve fan-out fix: with a pool of 2, a
// burst of 8 pipelined holds runs at most 2 handlers concurrently, queues
// at most the pool's depth, and answers the rest CodeOverloaded — instead
// of spawning 8 goroutines.
func TestWorkerPoolBound(t *testing.T) {
	const cap, burst = 2, 8
	gate := make(chan struct{})
	var active, maxActive atomic.Int64
	p := proxy.New(moderator.New("pool"))
	if err := p.Bind("hold", func(inv *aspect.Invocation) (any, error) {
		n := active.Add(1)
		for {
			m := maxActive.Load()
			if n <= m || maxActive.CompareAndSwap(m, n) {
				break
			}
		}
		defer active.Add(-1)
		select {
		case <-gate:
			return "ok", nil
		case <-inv.Context().Done():
			return nil, inv.Context().Err()
		}
	}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(WithMaxConcurrentPerConn(cap))
	addr := startServerOpts(t, srv, p)
	c := dialClient(t, addr)

	var wg sync.WaitGroup
	var ok, overloaded atomic.Int64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Component("pool").Invoke(context.Background(), "hold")
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			default:
				t.Errorf("hold: %v", err)
			}
		}()
	}
	// Wait until the pool and queue are saturated: every request beyond
	// 2 in flight + 2 queued has been refused.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Rejected < burst-2*cap {
		if time.Now().After(deadline) {
			t.Fatalf("rejections never reached %d: %+v", burst-2*cap, srv.Stats())
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(gate)
	wg.Wait()

	if got := maxActive.Load(); got > cap {
		t.Fatalf("max concurrent handlers = %d, want <= %d", got, cap)
	}
	if ok.Load()+overloaded.Load() != burst {
		t.Fatalf("outcomes %d ok + %d overloaded, want %d total", ok.Load(), overloaded.Load(), burst)
	}
	if overloaded.Load() == 0 {
		t.Fatal("no request was refused CodeOverloaded")
	}
	st := srv.Stats()
	if st.Rejected != uint64(overloaded.Load()) {
		t.Fatalf("server rejected = %d, clients saw %d", st.Rejected, overloaded.Load())
	}
	if st.Queued == 0 {
		t.Fatal("no request was counted as queued behind the pool")
	}
}

// TestShedPolicy pins admission-aware shedding: a shedding server refuses
// the request before any aspect or method body runs, the client sees
// ErrOverloaded, and the retry-after hint survives the wire.
func TestShedPolicy(t *testing.T) {
	var bodyRuns atomic.Int64
	p := proxy.New(moderator.New("shed"))
	if err := p.Bind("work", func(inv *aspect.Invocation) (any, error) {
		bodyRuns.Add(1)
		return "ran", nil
	}); err != nil {
		t.Fatal(err)
	}
	var shedding atomic.Bool
	srv := NewServer(WithShedPolicy(func(component, method string) (int64, bool) {
		if shedding.Load() {
			return 42, true
		}
		return 0, false
	}))
	addr := startServerOpts(t, srv, p)
	c := dialClient(t, addr)
	stub := c.Component("shed")

	if _, err := stub.Invoke(context.Background(), "work"); err != nil {
		t.Fatalf("unshedded call: %v", err)
	}
	shedding.Store(true)
	_, err := stub.Invoke(context.Background(), "work")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed call error = %v, want ErrOverloaded", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeOverloaded {
		t.Fatalf("shed call error = %v, want CodeOverloaded", err)
	}
	if re.RetryAfterMS != 42 {
		t.Fatalf("retry-after hint = %d, want 42", re.RetryAfterMS)
	}
	if got := bodyRuns.Load(); got != 1 {
		t.Fatalf("method body ran %d times, want 1 (shed must precede admission)", got)
	}
	st := srv.Stats()
	if st.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", st.Sheds)
	}

	shedding.Store(false)
	if _, err := stub.Invoke(context.Background(), "work"); err != nil {
		t.Fatalf("recovered call: %v", err)
	}
}

// TestWriterCoalescingAccounting pins the flush ledger: every response
// leaves through the coalescing writer, so the flushed-frame count must
// equal the responses produced and the flush count can never exceed it.
func TestWriterCoalescingAccounting(t *testing.T) {
	const calls = 50
	srv := NewServer()
	addr := startServerOpts(t, srv, newEchoProxy(t, "svc"))
	c := dialClient(t, addr)
	stub := c.Component("svc")
	for i := 0; i < calls; i++ {
		if _, err := stub.Invoke(context.Background(), "echo", i); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.FlushFrames != calls {
		t.Fatalf("flushed frames = %d, want %d", st.FlushFrames, calls)
	}
	if st.Flushes == 0 || st.Flushes > st.FlushFrames {
		t.Fatalf("flushes = %d with %d frames", st.Flushes, st.FlushFrames)
	}
}
