package ticket_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/apps/ticket"
)

// TestGuardedProducerConsumerOverlap hammers the guarded component with
// enough parallelism that one Open and one Assign genuinely overlap. The
// paper's buffer guard serializes producers against producers and
// consumers against consumers, but deliberately admits one of each at the
// same time — so the functional component's two buffer ends must be safe
// under exactly that pairing (ticket.go's Lamport construction). Before
// size became atomic, this test failed under the race detector with the
// two bodies racing on it, and the lost updates could surface as a
// spurious ErrFull from a guarded (admitted!) Open.
func TestGuardedProducerConsumerOverlap(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := g.Proxy().Invoke(ctx, ticket.MethodOpen, "id", "overlap"); err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if _, err := g.Proxy().Invoke(ctx, ticket.MethodAssign); err != nil {
					t.Errorf("assign: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := g.Server().Size(); got != 0 {
		t.Fatalf("buffer holds %d tickets after balanced open/assign pairs", got)
	}
	if o, a := g.Server().Opened(), g.Server().Assigned(); o != 16*300 || a != 16*300 {
		t.Fatalf("opened/assigned = %d/%d, want %d each", o, a, 16*300)
	}
}
