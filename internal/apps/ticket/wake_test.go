package ticket

// Apps-layer regression coverage for the wake-targeting fix: a guard that
// declares wake targets (the buffer's producer/consumer aspects) layered
// with passive-Waker aspects (metrics, audit, obsaudit — all return empty
// wake lists) must still wake a parked producer. Before the fix, a
// passive aspect's empty wake list could suppress the conservative
// broadcast and strand the targeted guard's waiters; the unit tests in
// internal/moderator pin the mechanism, this test pins the end-to-end
// composition an application actually builds.

import (
	"context"
	"testing"
	"time"

	"repro/internal/aspects/audit"
	"repro/internal/aspects/metrics"
	"repro/internal/obs"
)

func TestMixedTargetedPassiveStackWakes(t *testing.T) {
	trail, err := audit.NewTrail(64)
	if err != nil {
		t.Fatal(err)
	}
	collector := obs.NewCollector(obs.WithSampleEvery(1))
	g, err := NewGuarded(GuardedConfig{
		Capacity: 1,
		Audit:    trail,
		Metrics:  metrics.NewRecorder(),
		Obs:      collector,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()

	// Fill the capacity-1 buffer, then park a second producer on it.
	if _, err := p.Invoke(ctx, MethodOpen, "t1", "first"); err != nil {
		t.Fatal(err)
	}
	opened := make(chan error, 1)
	go func() {
		_, err := p.Invoke(ctx, MethodOpen, "t2", "second")
		opened <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.Moderator().Waiting(MethodOpen) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second producer never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// An assign frees the slot; its postactions run the full mixed stack
	// (targeted sync guard + passive metrics/audit/obs aspects). The
	// parked producer must wake and complete.
	if _, err := p.Invoke(ctx, MethodAssign); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-opened:
		if err != nil {
			t.Fatalf("woken producer failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked producer was never woken — wake targeting regressed")
	}

	// Drain the second ticket to leave the buffer consistent.
	if _, err := p.Invoke(ctx, MethodAssign); err != nil {
		t.Fatal(err)
	}
	if g.Moderator().Waiting(MethodOpen) != 0 {
		t.Fatalf("waiting = %d after wake", g.Moderator().Waiting(MethodOpen))
	}

	// The collector observed the park and the wake (park/wake tracing is
	// exact, not sampled).
	reg := collector.Registry()
	if got := reg.CounterOf("am_parks_total", "",
		obs.L("method", MethodOpen), obs.L("kind", "synchronization")).Value(); got != 1 {
		t.Fatalf("am_parks_total = %d, want 1", got)
	}
	if got := reg.GaugeOf("am_waiting", "", obs.L("method", MethodOpen)).Value(); got != 0 {
		t.Fatalf("am_waiting = %d, want 0", got)
	}
	var sawPark, sawWake bool
	for _, e := range collector.Events(0) {
		if e.Method == MethodOpen && e.Op == "park" {
			sawPark = true
		}
		if e.Method == MethodOpen && e.Op == "wake" && e.Err == "" {
			sawWake = true
		}
	}
	if !sawPark || !sawWake {
		t.Fatalf("event stream missing park/wake (park=%v wake=%v)", sawPark, sawWake)
	}
}
