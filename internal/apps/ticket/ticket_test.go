package ticket

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/aspects/audit"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
)

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0); err == nil {
		t.Error("capacity 0 must error")
	}
}

func TestServerSequentialSemantics(t *testing.T) {
	s, err := NewServer(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assign(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("assign from empty: %v", err)
	}
	if err := s.Open(Ticket{ID: "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Open(Ticket{ID: "t2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Open(Ticket{ID: "t3"}); !errors.Is(err, ErrFull) {
		t.Fatalf("open into full: %v", err)
	}
	// FIFO order.
	got, err := s.Assign()
	if err != nil || got.ID != "t1" {
		t.Fatalf("assign = %+v, %v", got, err)
	}
	got, err = s.Assign()
	if err != nil || got.ID != "t2" {
		t.Fatalf("assign = %+v, %v", got, err)
	}
	if s.Size() != 0 || s.Opened() != 2 || s.Assigned() != 2 {
		t.Errorf("counters: size=%d opened=%d assigned=%d", s.Size(), s.Opened(), s.Assigned())
	}
}

func TestServerWrapAround(t *testing.T) {
	s, err := NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for k := 0; k < 3; k++ {
			if err := s.Open(Ticket{ID: fmt.Sprintf("r%d-%d", round, k)}); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < 3; k++ {
			got, err := s.Assign()
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("r%d-%d", round, k)
			if got.ID != want {
				t.Fatalf("round %d: got %s want %s", round, got.ID, want)
			}
		}
	}
}

func TestGuardedBasicFlow(t *testing.T) {
	g, err := NewGuarded(GuardedConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	if _, err := p.Invoke(context.Background(), MethodOpen, "t1", "printer on fire"); err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke(context.Background(), MethodAssign)
	if err != nil {
		t.Fatal(err)
	}
	tk, ok := got.(Ticket)
	if !ok || tk.ID != "t1" {
		t.Fatalf("assign = %#v", got)
	}
}

func TestGuardedValidatesArgs(t *testing.T) {
	g, err := NewGuarded(GuardedConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Proxy().Invoke(context.Background(), MethodOpen, 42, "x"); err == nil {
		t.Error("non-string id must error")
	}
	if _, err := g.Proxy().Invoke(context.Background(), MethodOpen, "id-only"); err == nil {
		t.Error("missing summary must error")
	}
}

func TestGuardedConcurrentProducersConsumers(t *testing.T) {
	// The paper's headline scenario: concurrent clients against a small
	// buffer, with the sequential server never seeing Full or Empty.
	g, err := NewGuarded(GuardedConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	const producers, perProducer = 4, 25
	total := producers * perProducer
	var wg sync.WaitGroup
	ids := make(chan string, total)
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				id := fmt.Sprintf("t-%d-%d", w, k)
				if _, err := p.Invoke(context.Background(), MethodOpen, id, "s"); err != nil {
					t.Errorf("open: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				got, err := p.Invoke(context.Background(), MethodAssign)
				if err != nil {
					t.Errorf("assign: %v", err)
					return
				}
				ids <- got.(Ticket).ID
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool, total)
	for id := range ids {
		if seen[id] {
			t.Errorf("duplicate %s", id)
		}
		seen[id] = true
	}
	if len(seen) != total {
		t.Errorf("got %d distinct tickets, want %d", len(seen), total)
	}
	if g.Server().Size() != 0 {
		t.Errorf("final size = %d", g.Server().Size())
	}
	if err := g.Buffer().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestGuardedWithAuditAndMetrics(t *testing.T) {
	trail, err := audit.NewTrail(64)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	g, err := NewGuarded(GuardedConfig{Capacity: 2, Audit: trail, Metrics: rec})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	if _, err := p.Invoke(context.Background(), MethodOpen, "t1", "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), MethodAssign); err != nil {
		t.Fatal(err)
	}
	if trail.Seq() != 4 { // pre+post for each invocation
		t.Errorf("audit events = %d, want 4", trail.Seq())
	}
	snap := rec.Snapshot()
	if snap[ComponentName+"."+MethodOpen].Count != 1 || snap[ComponentName+"."+MethodAssign].Count != 1 {
		t.Errorf("metrics = %+v", snap)
	}
}

func TestEnableAuthenticationAdaptability(t *testing.T) {
	// Capacity must exceed the number of opens the test commits (t0, the
	// authenticated t1, t2), or the last one blocks on a full buffer.
	g, err := NewGuarded(GuardedConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()

	// Before: anonymous calls pass.
	if _, err := p.Invoke(ctx, MethodOpen, "t0", "s"); err != nil {
		t.Fatal(err)
	}

	store := auth.NewTokenStore()
	tok := store.Issue("alice", "client")
	if err := g.EnableAuthentication(store); err != nil {
		t.Fatal(err)
	}
	if err := g.EnableAuthentication(store); err == nil {
		t.Error("double enable must error")
	}

	// Anonymous calls now abort with ErrUnauthenticated.
	if _, err := p.Invoke(ctx, MethodOpen, "t1", "s"); !errors.Is(err, auth.ErrUnauthenticated) {
		t.Fatalf("anonymous open after enable: %v", err)
	}
	// Authenticated calls pass.
	inv := aspect.NewInvocation(ctx, p.Name(), MethodOpen, []any{"t1", "s"})
	auth.WithToken(inv, tok)
	if _, err := p.Call(inv); err != nil {
		t.Fatalf("authenticated open: %v", err)
	}

	// Disable: anonymous calls pass again.
	if err := g.DisableAuthentication(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, MethodOpen, "t2", "s"); err != nil {
		t.Fatalf("open after disable: %v", err)
	}
}

func TestEnableAuthenticationNilStore(t *testing.T) {
	g, err := NewGuarded(GuardedConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EnableAuthentication(nil); err == nil {
		t.Error("nil store must error")
	}
}
