// Package ticket implements the paper's running example: a trouble-
// ticketing system in which clients open (place) tickets on a server and
// agents assign (retrieve) them — a producer/consumer protocol over a
// bounded buffer (Section 4).
//
// Server is the functional component: a plain, sequential ring buffer with
// no synchronization, security, or instrumentation code whatsoever. All of
// those concerns are composed around it by the framework; see wire.go for
// the assembly that reproduces the paper's Figures 5-6 (initialization) and
// 13-16 (the authentication extension).
package ticket

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Ticket is one trouble ticket.
type Ticket struct {
	ID      string `json:"id"`
	Summary string `json:"summary"`
}

// ErrFull is returned by Open on a full buffer. Under the framework's
// synchronization aspect this never surfaces: callers block instead.
var ErrFull = errors.New("ticket: buffer full")

// ErrEmpty is returned by Assign on an empty buffer. Under the framework's
// synchronization aspect this never surfaces: callers block instead.
var ErrEmpty = errors.New("ticket: buffer empty")

// Server is the sequential functional component: a bounded ring buffer of
// tickets. It is deliberately free of locks and guards — the paper's whole
// point is that such interaction code lives in aspects, not here.
//
// The one concession to the admission protocol it lives under: the paper's
// buffer guard (ActiveOpen == 0 / ActiveAssign == 0) serializes producers
// against producers and consumers against consumers, but one Open and one
// Assign may legitimately execute at the same time — the classic two-ended
// ring buffer. The two ends therefore share nothing unsynchronized: tail is
// written only by the (single) producer, head only by the (single)
// consumer, and size is atomic — each end's Add is the release that
// publishes its slot write to the other end, exactly Lamport's
// single-producer/single-consumer construction. Beyond that pairing the
// Server is NOT safe for unguarded concurrent use.
type Server struct {
	ring []Ticket
	head int // consumer-owned
	tail int // producer-owned
	size atomic.Int64

	opened   atomic.Uint64
	assigned atomic.Uint64
}

// NewServer creates a ticket server with the given buffer capacity.
func NewServer(capacity int) (*Server, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ticket: capacity %d must be positive", capacity)
	}
	return &Server{ring: make([]Ticket, capacity)}, nil
}

// Open places a ticket into the buffer (the paper's open service).
func (s *Server) Open(t Ticket) error {
	// size < capacity proves the slot at tail is free, and the consumer's
	// decrement that freed it also published its clear of that slot.
	if s.size.Load() == int64(len(s.ring)) {
		return ErrFull
	}
	s.ring[s.tail] = t
	s.tail = (s.tail + 1) % len(s.ring)
	s.size.Add(1)
	s.opened.Add(1)
	return nil
}

// Assign retrieves the oldest ticket from the buffer (the paper's assign
// service).
func (s *Server) Assign() (Ticket, error) {
	// size > 0 proves the slot at head is occupied, and the producer's
	// increment that filled it also published its write of that slot.
	if s.size.Load() == 0 {
		return Ticket{}, ErrEmpty
	}
	t := s.ring[s.head]
	s.ring[s.head] = Ticket{}
	s.head = (s.head + 1) % len(s.ring)
	s.size.Add(-1)
	s.assigned.Add(1)
	return t, nil
}

// Size returns the number of buffered tickets.
func (s *Server) Size() int { return int(s.size.Load()) }

// Capacity returns the buffer capacity.
func (s *Server) Capacity() int { return len(s.ring) }

// Opened returns the total number of tickets ever opened.
func (s *Server) Opened() uint64 { return s.opened.Load() }

// Assigned returns the total number of tickets ever assigned.
func (s *Server) Assigned() uint64 { return s.assigned.Load() }
