package ticket

import (
	"fmt"

	"repro/internal/aspect"
	"repro/internal/aspects/audit"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
	"repro/internal/aspects/obsaudit"
	"repro/internal/aspects/syncguard"
	"repro/internal/core"
	"repro/internal/factory"
	"repro/internal/moderator"
	"repro/internal/obs"
	"repro/internal/proxy"
)

// Method names of the participating methods.
const (
	MethodOpen   = "open"
	MethodAssign = "assign"
)

// ComponentName is the guarded component's registered name.
const ComponentName = "ticket-server"

// Guarded is the framework-composed ticket service: the sequential Server
// wrapped by a proxy whose moderator evaluates the registered aspects —
// the full architecture of the paper's Figure 1 instantiated for the
// trouble-ticketing example.
type Guarded struct {
	component *core.Component
	server    *Server
	buffer    *syncguard.Buffer
	store     *auth.TokenStore
	shadow    *moderator.Shadow
}

// GuardedConfig configures NewGuarded. Capacity is required; the optional
// collaborators add their concern when non-nil.
type GuardedConfig struct {
	// Capacity of the ticket buffer.
	Capacity int
	// Audit, when non-nil, records every invocation on the trail.
	Audit *audit.Trail
	// Metrics, when non-nil, measures every invocation.
	Metrics *metrics.Recorder
	// Obs, when non-nil, turns on observability: the moderator's trace
	// hooks feed the collector, the collector polls the moderator for
	// exact aggregates, and an obsaudit aspect records spans through the
	// aspect-bank path.
	Obs *obs.Collector
	// ModeratorOptions forwards wake policy/mode to the moderator.
	ModeratorOptions []moderator.Option
	// ShadowSampleEvery, when > 0, turns on shadow admission: one live
	// admission in every N per domain is replayed off the hot path
	// against the reference semantics, and divergences surface through
	// the Obs collector (when set) at /shadow and as am_shadow_* series.
	ShadowSampleEvery int
}

// NewFactory builds the application's aspect factory — the paper's
// AspectFactory of Figure 6: it knows how to create the synchronization
// aspects for open and assign (from the shared buffer guard state) plus
// the optional audit and metrics aspects.
func NewFactory(buf *syncguard.Buffer, trail *audit.Trail, rec *metrics.Recorder) (factory.Factory, error) {
	reg := factory.NewRegistry()
	err := reg.Provide(MethodOpen, aspect.KindSynchronization, func(string, any) (aspect.Aspect, error) {
		return buf.ProducerAspect(), nil
	})
	if err != nil {
		return nil, err
	}
	err = reg.Provide(MethodAssign, aspect.KindSynchronization, func(string, any) (aspect.Aspect, error) {
		return buf.ConsumerAspect(), nil
	})
	if err != nil {
		return nil, err
	}
	if trail != nil {
		err = reg.Provide(factory.Wildcard, aspect.KindAudit, func(method string, _ any) (aspect.Aspect, error) {
			return trail.Aspect("audit-" + method), nil
		})
		if err != nil {
			return nil, err
		}
	}
	if rec != nil {
		err = reg.Provide(factory.Wildcard, aspect.KindMetrics, func(method string, _ any) (aspect.Aspect, error) {
			return rec.Aspect("metrics-" + method), nil
		})
		if err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// NewGuarded assembles the guarded ticket service, performing the paper's
// initialization phase (Figure 2): create the synchronization aspects via
// the factory and register them with the moderator before any invocation.
func NewGuarded(cfg GuardedConfig) (*Guarded, error) {
	srv, err := NewServer(cfg.Capacity)
	if err != nil {
		return nil, err
	}
	buf, err := syncguard.NewBuffer(cfg.Capacity, MethodOpen, MethodAssign)
	if err != nil {
		return nil, err
	}
	f, err := NewFactory(buf, cfg.Audit, cfg.Metrics)
	if err != nil {
		return nil, err
	}

	b := core.NewComponent(ComponentName,
		core.WithFactory(f),
		core.WithTarget(srv),
		core.WithModeratorOptions(cfg.ModeratorOptions...))
	// open and assign share the buffer guard state, so they must share one
	// admission domain. The producer/consumer aspects' wake lists would
	// group them automatically at registration; declaring it here makes the
	// coupling visible in the wiring.
	b.Group(MethodOpen, MethodAssign)
	b.Bind(MethodOpen, func(inv *aspect.Invocation) (any, error) {
		id, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		summary, err := inv.ArgString(1)
		if err != nil {
			return nil, err
		}
		return nil, srv.Open(Ticket{ID: id, Summary: summary})
	})
	b.Bind(MethodAssign, func(*aspect.Invocation) (any, error) {
		return srv.Assign()
	})
	b.Guard(MethodOpen, aspect.KindSynchronization)
	b.Guard(MethodAssign, aspect.KindSynchronization)
	if cfg.Metrics != nil {
		b.Guard(MethodOpen, aspect.KindMetrics)
		b.Guard(MethodAssign, aspect.KindMetrics)
	}
	if cfg.Audit != nil {
		b.Guard(MethodOpen, aspect.KindAudit)
		b.Guard(MethodAssign, aspect.KindAudit)
	}
	if cfg.Obs != nil {
		// The observability audit records through the aspect-bank path —
		// the framework dogfooding itself. Registered last in the base
		// layer: its span covers the method body but not the guards'
		// blocking, mirroring the metrics aspect's placement.
		auditor := obsaudit.New(cfg.Obs)
		b.Use(MethodOpen, obsaudit.Kind, auditor.Aspect("obs-"+MethodOpen))
		b.Use(MethodAssign, obsaudit.Kind, auditor.Aspect("obs-"+MethodAssign))
	}
	comp, err := b.Build()
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		comp.Moderator().SetTracer(cfg.Obs)
		cfg.Obs.Watch(comp.Moderator())
	}
	g := &Guarded{component: comp, server: srv, buffer: buf}
	if cfg.ShadowSampleEvery > 0 {
		g.shadow = moderator.NewShadow(comp.Moderator(),
			moderator.WithShadowSampleEvery(cfg.ShadowSampleEvery))
		g.shadow.Start()
		comp.Moderator().SetShadow(g.shadow)
		if cfg.Obs != nil {
			cfg.Obs.WatchShadow(g.shadow)
		}
	}
	return g, nil
}

// Proxy returns the guarded entry point.
func (g *Guarded) Proxy() *proxy.Proxy { return g.component.Proxy() }

// Moderator returns the component's moderator.
func (g *Guarded) Moderator() *moderator.Moderator { return g.component.Moderator() }

// Server returns the underlying functional component, for inspection. Do
// not call its methods directly while guarded invocations are in flight.
func (g *Guarded) Server() *Server { return g.server }

// Buffer returns the synchronization guard state, for inspection.
func (g *Guarded) Buffer() *syncguard.Buffer { return g.buffer }

// Shadow returns the shadow-admission engine, or nil when shadow mode is
// off.
func (g *Guarded) Shadow() *moderator.Shadow { return g.shadow }

// StopShadow detaches and retires the shadow engine (no-op when off).
func (g *Guarded) StopShadow() {
	if g.shadow == nil {
		return
	}
	g.Moderator().SetShadow(nil)
	g.shadow.Stop()
}

// AuthLayer is the moderator layer name used by EnableAuthentication.
const AuthLayer = "authentication"

// EnableAuthentication reproduces the paper's adaptability scenario
// (Figures 13-18): an outermost authentication layer is added to the
// running component — no functional code changes — so every open and
// assign now requires a valid token before the synchronization layer
// even evaluates.
func (g *Guarded) EnableAuthentication(store *auth.TokenStore) error {
	if store == nil {
		return fmt.Errorf("ticket: nil token store")
	}
	mod := g.Moderator()
	if err := mod.AddLayer(AuthLayer, moderator.Outermost); err != nil {
		return err
	}
	for _, m := range []string{MethodOpen, MethodAssign} {
		// The paper's ExtendedAspectFactory creates one authentication
		// aspect per participating method (Figure 15).
		a := auth.Authenticator("authenticate-"+m, store)
		if err := mod.RegisterIn(AuthLayer, m, aspect.KindAuthentication, a); err != nil {
			return err
		}
	}
	g.store = store
	return nil
}

// DisableAuthentication removes the authentication layer.
func (g *Guarded) DisableAuthentication() error {
	g.store = nil
	return g.Moderator().RemoveLayer(AuthLayer)
}
