package auction

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
)

func TestHouseSequentialSemantics(t *testing.T) {
	h := NewHouse()
	if err := h.List("", 1); err == nil {
		t.Error("empty lot id must error")
	}
	if err := h.List("vase", -1); err == nil {
		t.Error("negative min bid must error")
	}
	if err := h.List("vase", 10); err != nil {
		t.Fatal(err)
	}
	if err := h.List("vase", 10); !errors.Is(err, ErrLotExists) {
		t.Fatalf("duplicate list: %v", err)
	}
	if err := h.Bid("ghost", "a", 50); !errors.Is(err, ErrNoSuchLot) {
		t.Fatalf("ghost lot: %v", err)
	}
	if err := h.Bid("vase", "a", 5); !errors.Is(err, ErrBidTooLow) {
		t.Fatalf("below min: %v", err)
	}
	if err := h.Bid("vase", "a", 10); err != nil {
		t.Fatal(err)
	}
	if err := h.Bid("vase", "b", 10); !errors.Is(err, ErrBidTooLow) {
		t.Fatalf("equal bid: %v", err)
	}
	if err := h.Bid("vase", "b", 12); err != nil {
		t.Fatal(err)
	}
	lot, err := h.Close("vase")
	if err != nil {
		t.Fatal(err)
	}
	if lot.BestBidder != "b" || lot.BestBid != 12 || lot.Bids != 2 {
		t.Errorf("closed lot = %+v", lot)
	}
	if err := h.Bid("vase", "c", 100); !errors.Is(err, ErrClosed) {
		t.Fatalf("bid after close: %v", err)
	}
	if _, err := h.Close("vase"); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	got, err := h.Get("vase")
	if err != nil || !got.Closed {
		t.Fatalf("get = %+v, %v", got, err)
	}
	if lots := h.Lots(); len(lots) != 1 || lots[0] != "vase" {
		t.Errorf("lots = %v", lots)
	}
}

func TestGuardedBasicFlow(t *testing.T) {
	g, err := NewGuarded(GuardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	if _, err := p.Invoke(ctx, MethodList, "vase", 10.0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, MethodBid, "vase", "alice", 15.0); err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke(ctx, MethodGet, "vase")
	if err != nil {
		t.Fatal(err)
	}
	if lot := got.(Lot); lot.BestBidder != "alice" {
		t.Errorf("lot = %+v", lot)
	}
	closed, err := p.Invoke(ctx, MethodClose, "vase")
	if err != nil {
		t.Fatal(err)
	}
	if lot := closed.(Lot); !lot.Closed || lot.BestBid != 15 {
		t.Errorf("closed = %+v", lot)
	}
}

func TestGuardedConcurrentBiddingInvariant(t *testing.T) {
	// Bidders race; the winning bid must be the maximum successful bid and
	// every successful bid must have been strictly increasing.
	g, err := NewGuarded(GuardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	if _, err := p.Invoke(ctx, MethodList, "lot", 1.0); err != nil {
		t.Fatal(err)
	}
	const bidders, bidsEach = 8, 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []float64
	for b := 0; b < bidders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			me := fmt.Sprintf("bidder-%d", b)
			for k := 0; k < bidsEach; k++ {
				amount := float64(1 + b + k*bidders)
				_, err := p.Invoke(ctx, MethodBid, "lot", me, amount)
				if err == nil {
					mu.Lock()
					accepted = append(accepted, amount)
					mu.Unlock()
				} else if !errors.Is(err, ErrBidTooLow) {
					t.Errorf("bid: %v", err)
				}
			}
		}(b)
	}
	wg.Wait()
	lot, err := g.House().Get("lot")
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, a := range accepted {
		if a > max {
			max = a
		}
	}
	if lot.BestBid != max {
		t.Errorf("best = %v, max accepted = %v", lot.BestBid, max)
	}
	if lot.Bids != len(accepted) {
		t.Errorf("bids = %d, accepted = %d", lot.Bids, len(accepted))
	}
}

func TestGuardedFairShare(t *testing.T) {
	g, err := NewGuarded(GuardedConfig{FairSharePerBidder: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	if _, err := p.Invoke(ctx, MethodList, "lot", 1.0); err != nil {
		t.Fatal(err)
	}
	// Sequential calls always fit within the per-bidder quota.
	for k := 0; k < 5; k++ {
		if _, err := p.Invoke(ctx, MethodBid, "lot", "alice", float64(2+k)); err != nil {
			t.Fatalf("bid %d: %v", k, err)
		}
	}
}

func TestGuardedWithSecurity(t *testing.T) {
	store := auth.NewTokenStore()
	sellerTok := store.Issue("sam", "seller")
	bidderTok := store.Issue("bea", "bidder")
	acl := auth.ACL{
		MethodList:  {"seller"},
		MethodClose: {"seller"},
		MethodBid:   {"bidder"},
		MethodGet:   {"seller", "bidder"},
	}
	g, err := NewGuarded(GuardedConfig{Authenticator: store, ACL: acl})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()

	call := func(tok, method string, args ...any) error {
		inv := aspect.NewInvocation(ctx, p.Name(), method, args)
		auth.WithToken(inv, tok)
		_, err := p.Call(inv)
		return err
	}
	if err := call(sellerTok, MethodList, "vase", 10.0); err != nil {
		t.Fatalf("seller list: %v", err)
	}
	if err := call(bidderTok, MethodList, "urn", 5.0); !errors.Is(err, auth.ErrPermissionDenied) {
		t.Fatalf("bidder list: %v", err)
	}
	// Bid as authenticated principal: bidder name comes from the token.
	if err := call(bidderTok, MethodBid, "vase", nil, 12.0); err != nil {
		t.Fatalf("bidder bid: %v", err)
	}
	lot, err := g.House().Get("vase")
	if err != nil || lot.BestBidder != "bea" {
		t.Fatalf("lot = %+v, %v", lot, err)
	}
	if err := call(bidderTok, MethodClose, "vase"); !errors.Is(err, auth.ErrPermissionDenied) {
		t.Fatalf("bidder close: %v", err)
	}
	if err := call(sellerTok, MethodClose, "vase"); err != nil {
		t.Fatalf("seller close: %v", err)
	}
}
