// Package auction implements an on-line auction — one of the applications
// the paper's Section 2 motivates. The functional component is a plain,
// sequential lot ledger; mutual exclusion, scheduling, and authorization
// are composed around it by the framework in wire.go.
package auction

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors of the functional component.
var (
	// ErrNoSuchLot is returned for an unknown lot.
	ErrNoSuchLot = errors.New("auction: no such lot")
	// ErrLotExists is returned when listing a duplicate lot.
	ErrLotExists = errors.New("auction: lot exists")
	// ErrClosed is returned when bidding on a closed lot.
	ErrClosed = errors.New("auction: lot closed")
	// ErrBidTooLow is returned when a bid does not beat the current best.
	ErrBidTooLow = errors.New("auction: bid too low")
)

// Lot is one item under auction.
type Lot struct {
	ID         string  `json:"id"`
	MinBid     float64 `json:"min_bid"`
	BestBid    float64 `json:"best_bid"`
	BestBidder string  `json:"best_bidder"`
	Bids       int     `json:"bids"`
	Closed     bool    `json:"closed"`
}

// House is the sequential functional component: the auction ledger. It is
// NOT safe for unguarded concurrent use.
type House struct {
	lots map[string]*Lot
}

// NewHouse creates an empty auction house.
func NewHouse() *House {
	return &House{lots: make(map[string]*Lot, 16)}
}

// List puts a new lot under auction with the given minimum bid.
func (h *House) List(id string, minBid float64) error {
	if id == "" {
		return errors.New("auction: empty lot id")
	}
	if minBid < 0 {
		return fmt.Errorf("auction: negative minimum bid %v", minBid)
	}
	if _, dup := h.lots[id]; dup {
		return fmt.Errorf("%w: %s", ErrLotExists, id)
	}
	h.lots[id] = &Lot{ID: id, MinBid: minBid}
	return nil
}

// Bid places a bid. It must be at least the minimum and strictly beat the
// current best.
func (h *House) Bid(lotID, bidder string, amount float64) error {
	lot, ok := h.lots[lotID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchLot, lotID)
	}
	if lot.Closed {
		return fmt.Errorf("%w: %s", ErrClosed, lotID)
	}
	if amount < lot.MinBid || amount <= lot.BestBid {
		return fmt.Errorf("%w: %v (best %v, min %v)", ErrBidTooLow, amount, lot.BestBid, lot.MinBid)
	}
	lot.BestBid = amount
	lot.BestBidder = bidder
	lot.Bids++
	return nil
}

// Close ends the auction for a lot and returns its final state.
func (h *House) Close(lotID string) (Lot, error) {
	lot, ok := h.lots[lotID]
	if !ok {
		return Lot{}, fmt.Errorf("%w: %s", ErrNoSuchLot, lotID)
	}
	if lot.Closed {
		return Lot{}, fmt.Errorf("%w: %s", ErrClosed, lotID)
	}
	lot.Closed = true
	return *lot, nil
}

// Get returns a lot's current state.
func (h *House) Get(lotID string) (Lot, error) {
	lot, ok := h.lots[lotID]
	if !ok {
		return Lot{}, fmt.Errorf("%w: %s", ErrNoSuchLot, lotID)
	}
	return *lot, nil
}

// Lots returns the sorted ids of all lots.
func (h *House) Lots() []string {
	out := make([]string, 0, len(h.lots))
	for id := range h.lots {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
