package auction

import (
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
	"repro/internal/aspects/sched"
	"repro/internal/aspects/syncguard"
	"repro/internal/core"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// Method names of the participating methods.
const (
	MethodList  = "list"
	MethodBid   = "bid"
	MethodClose = "close"
	MethodGet   = "get"
)

// ComponentName is the guarded component's registered name.
const ComponentName = "auction-house"

// Guarded is the framework-composed auction service: readers-writer
// synchronization over the ledger, optional per-bidder fair-share
// scheduling, authorization, and metrics.
type Guarded struct {
	component *core.Component
	house     *House
	rw        *syncguard.RWLock
	fair      *sched.FairShare
}

// GuardedConfig configures NewGuarded.
type GuardedConfig struct {
	// House is the functional component (default: a fresh empty house).
	House *House
	// FairSharePerBidder, when positive, bounds concurrent bids per
	// bidder with a fair-share scheduling aspect.
	FairSharePerBidder int
	// Authenticator, when non-nil, requires tokens from this store.
	Authenticator *auth.TokenStore
	// ACL, when non-nil, authorizes methods by role.
	ACL auth.ACL
	// Metrics, when non-nil, measures every invocation.
	Metrics *metrics.Recorder
	// ModeratorOptions forwards wake policy/mode to the moderator.
	ModeratorOptions []moderator.Option
}

// NewGuarded assembles the guarded auction service.
func NewGuarded(cfg GuardedConfig) (*Guarded, error) {
	h := cfg.House
	if h == nil {
		h = NewHouse()
	}
	writeMethods := []string{MethodList, MethodBid, MethodClose}
	readMethods := []string{MethodGet}
	allMethods := append(append([]string{}, writeMethods...), readMethods...)
	rw := syncguard.NewRWLock(allMethods...)

	b := core.NewComponent(ComponentName, core.WithModeratorOptions(cfg.ModeratorOptions...))
	b.Bind(MethodList, func(inv *aspect.Invocation) (any, error) {
		id, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		minBid, err := inv.ArgFloat(1)
		if err != nil {
			return nil, err
		}
		return nil, h.List(id, minBid)
	})
	b.Bind(MethodBid, func(inv *aspect.Invocation) (any, error) {
		id, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		bidder, err := bidderFrom(inv, 1)
		if err != nil {
			return nil, err
		}
		amount, err := inv.ArgFloat(2)
		if err != nil {
			return nil, err
		}
		return nil, h.Bid(id, bidder, amount)
	})
	b.Bind(MethodClose, func(inv *aspect.Invocation) (any, error) {
		id, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		return h.Close(id)
	})
	b.Bind(MethodGet, func(inv *aspect.Invocation) (any, error) {
		id, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		return h.Get(id)
	})

	if cfg.Authenticator != nil {
		b.Layer("security", moderator.Outermost)
		for _, m := range allMethods {
			b.UseIn("security", m, aspect.KindAuthentication,
				auth.Authenticator("authenticate-"+m, cfg.Authenticator))
		}
		if cfg.ACL != nil {
			for _, m := range allMethods {
				b.UseIn("security", m, aspect.KindAuthorization,
					auth.Authorizer("authorize-"+m, cfg.ACL))
			}
		}
	}

	var fair *sched.FairShare
	if cfg.FairSharePerBidder > 0 {
		var err error
		fair, err = sched.NewFairShare(cfg.FairSharePerBidder, func(inv *aspect.Invocation) string {
			bidder, berr := bidderFrom(inv, 1)
			if berr != nil {
				return "" // anonymous bucket
			}
			return bidder
		}, MethodBid)
		if err != nil {
			return nil, err
		}
		b.Use(MethodBid, aspect.KindScheduling, fair.Aspect("fair-bid"))
	}

	for _, m := range writeMethods {
		b.Use(m, aspect.KindSynchronization, rw.WriterAspect("write-"+m))
	}
	for _, m := range readMethods {
		b.Use(m, aspect.KindSynchronization, rw.ReaderAspect("read-"+m))
	}
	if cfg.Metrics != nil {
		b.Layer("instrumentation", moderator.Innermost)
		for _, m := range allMethods {
			b.UseIn("instrumentation", m, aspect.KindMetrics, cfg.Metrics.Aspect("metrics-"+m))
		}
	}

	comp, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Guarded{component: comp, house: h, rw: rw, fair: fair}, nil
}

// bidderFrom resolves the acting bidder: the authenticated principal when
// present, else the explicit argument at index i.
func bidderFrom(inv *aspect.Invocation, i int) (string, error) {
	if p := auth.PrincipalOf(inv); p != nil {
		return p.Name, nil
	}
	return inv.ArgString(i)
}

// Proxy returns the guarded entry point.
func (g *Guarded) Proxy() *proxy.Proxy { return g.component.Proxy() }

// Moderator returns the component's moderator.
func (g *Guarded) Moderator() *moderator.Moderator { return g.component.Moderator() }

// House returns the underlying functional component, for inspection. Do
// not call its methods directly while guarded invocations are in flight.
func (g *Guarded) House() *House { return g.house }
