package auction

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// TestHouseMatchesModelProperty drives the guarded auction with random bid
// sequences and cross-checks against an independent model of the
// strictly-increasing-bid rule.
func TestHouseMatchesModelProperty(t *testing.T) {
	run := func(amounts []uint8) error {
		g, err := NewGuarded(GuardedConfig{})
		if err != nil {
			return err
		}
		p := g.Proxy()
		ctx := context.Background()
		const minBid = 5.0
		if _, err := p.Invoke(ctx, MethodList, "lot", minBid); err != nil {
			return err
		}
		best := 0.0
		bids := 0
		for step, raw := range amounts {
			amount := float64(raw % 32)
			_, err := p.Invoke(ctx, MethodBid, "lot", "b", amount)
			wantOK := amount >= minBid && amount > best
			if wantOK != (err == nil) {
				return fmt.Errorf("step %d: bid %v with best %v: err=%v", step, amount, best, err)
			}
			if wantOK {
				best = amount
				bids++
			} else if !errors.Is(err, ErrBidTooLow) {
				return fmt.Errorf("step %d: wrong error: %v", step, err)
			}
		}
		res, err := p.Invoke(ctx, MethodGet, "lot")
		if err != nil {
			return err
		}
		lot := res.(Lot)
		if lot.BestBid != best || lot.Bids != bids {
			return fmt.Errorf("lot = %+v, model best=%v bids=%d", lot, best, bids)
		}
		return nil
	}
	f := func(amounts []uint8) bool {
		if err := run(amounts); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
