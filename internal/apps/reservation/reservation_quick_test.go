package reservation

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// TestVenueMatchesModelProperty drives the guarded reservation component
// with random operation sequences and cross-checks every outcome against
// an independent map model.
func TestVenueMatchesModelProperty(t *testing.T) {
	seats := []string{"A", "B", "C"}
	holders := []string{"alice", "bob"}

	run := func(ops []uint8) error {
		v, err := NewVenue(seats)
		if err != nil {
			return err
		}
		g, err := NewGuarded(GuardedConfig{Venue: v})
		if err != nil {
			return err
		}
		p := g.Proxy()
		ctx := context.Background()
		model := map[string]string{} // seat -> holder

		for step, op := range ops {
			seat := seats[int(op)%len(seats)]
			holder := holders[int(op/8)%len(holders)]
			switch op % 3 {
			case 0: // reserve
				_, err := p.Invoke(ctx, MethodReserve, seat, holder)
				taken := model[seat] != ""
				if taken != errors.Is(err, ErrSeatTaken) {
					return fmt.Errorf("step %d: reserve %s by %s: taken=%v err=%v", step, seat, holder, taken, err)
				}
				if !taken {
					if err != nil {
						return fmt.Errorf("step %d: reserve free seat: %v", step, err)
					}
					model[seat] = holder
				}
			case 1: // cancel
				_, err := p.Invoke(ctx, MethodCancel, seat, holder)
				held := model[seat] == holder
				if held != (err == nil) {
					return fmt.Errorf("step %d: cancel %s by %s: held=%v err=%v", step, seat, holder, held, err)
				}
				if held {
					delete(model, seat)
				} else if !errors.Is(err, ErrNotHeld) {
					return fmt.Errorf("step %d: cancel wrong error: %v", step, err)
				}
			case 2: // query
				got, err := p.Invoke(ctx, MethodHolder, seat)
				if err != nil {
					return fmt.Errorf("step %d: holder: %v", step, err)
				}
				if got != model[seat] {
					return fmt.Errorf("step %d: holder %s = %v, model %q", step, seat, got, model[seat])
				}
			}
		}
		// Final availability must match the model.
		free := 0
		for _, s := range seats {
			if model[s] == "" {
				free++
			}
		}
		avail, err := p.Invoke(ctx, MethodAvailable)
		if err != nil {
			return err
		}
		if got := len(avail.([]string)); got != free {
			return fmt.Errorf("available = %d, model %d", got, free)
		}
		return nil
	}

	f := func(ops []uint8) bool {
		if err := run(ops); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
