package reservation

import (
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
	"repro/internal/aspects/obsaudit"
	"repro/internal/aspects/syncguard"
	"repro/internal/core"
	"repro/internal/moderator"
	"repro/internal/obs"
	"repro/internal/proxy"
)

// Method names of the participating methods.
const (
	MethodReserve   = "reserve"
	MethodCancel    = "cancel"
	MethodHolder    = "holder"
	MethodAvailable = "available"
)

// ComponentName is the guarded component's registered name.
const ComponentName = "reservation"

// Guarded is the framework-composed reservation service: readers-writer
// synchronization (queries run concurrently, mutations exclusively), with
// optional authorization and metrics — the same aspect objects used by the
// other applications, demonstrating the reuse the paper claims.
type Guarded struct {
	component *core.Component
	venue     *Venue
	rw        *syncguard.RWLock
	shadow    *moderator.Shadow
}

// GuardedConfig configures NewGuarded.
type GuardedConfig struct {
	// Venue is the functional component to guard (required).
	Venue *Venue
	// Authenticator, when non-nil, requires tokens from this store.
	Authenticator *auth.TokenStore
	// ACL, when non-nil, authorizes methods by role (requires
	// Authenticator).
	ACL auth.ACL
	// Metrics, when non-nil, measures every invocation.
	Metrics *metrics.Recorder
	// Obs, when non-nil, turns on observability: trace hooks feed the
	// collector, the collector polls exact aggregates, and an obsaudit
	// aspect records spans in the instrumentation layer.
	Obs *obs.Collector
	// ModeratorOptions forwards wake policy/mode to the moderator.
	ModeratorOptions []moderator.Option
	// ShadowSampleEvery, when > 0, turns on shadow admission: one live
	// admission in every N per domain is replayed off the hot path
	// against the reference semantics (see moderator.Shadow).
	ShadowSampleEvery int
}

// NewGuarded assembles the guarded reservation service.
func NewGuarded(cfg GuardedConfig) (*Guarded, error) {
	v := cfg.Venue
	if v == nil {
		var err error
		v, err = GridVenue(10, 10)
		if err != nil {
			return nil, err
		}
	}
	writeMethods := []string{MethodReserve, MethodCancel}
	readMethods := []string{MethodHolder, MethodAvailable}
	allMethods := append(append([]string{}, writeMethods...), readMethods...)
	rw := syncguard.NewRWLock(allMethods...)

	b := core.NewComponent(ComponentName, core.WithModeratorOptions(cfg.ModeratorOptions...))
	// All four methods go through the one reader-writer lock, so they share
	// one admission domain (the rw aspects' wake lists would also group
	// them; the declaration keeps the coupling explicit).
	b.Group(allMethods...)
	b.Bind(MethodReserve, func(inv *aspect.Invocation) (any, error) {
		seat, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		holder, err := holderFrom(inv, 1)
		if err != nil {
			return nil, err
		}
		return nil, v.Reserve(seat, holder)
	})
	b.Bind(MethodCancel, func(inv *aspect.Invocation) (any, error) {
		seat, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		holder, err := holderFrom(inv, 1)
		if err != nil {
			return nil, err
		}
		return nil, v.Cancel(seat, holder)
	})
	b.Bind(MethodHolder, func(inv *aspect.Invocation) (any, error) {
		seat, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		return v.Holder(seat)
	})
	b.Bind(MethodAvailable, func(*aspect.Invocation) (any, error) {
		return v.Available(), nil
	})

	// Authentication/authorization compose outermost.
	if cfg.Authenticator != nil {
		b.Layer("security", moderator.Outermost)
		for _, m := range allMethods {
			b.UseIn("security", m, aspect.KindAuthentication,
				auth.Authenticator("authenticate-"+m, cfg.Authenticator))
		}
		if cfg.ACL != nil {
			for _, m := range allMethods {
				b.UseIn("security", m, aspect.KindAuthorization,
					auth.Authorizer("authorize-"+m, cfg.ACL))
			}
		}
	}
	// Readers-writer synchronization in the base layer.
	for _, m := range writeMethods {
		b.Use(m, aspect.KindSynchronization, rw.WriterAspect("write-"+m))
	}
	for _, m := range readMethods {
		b.Use(m, aspect.KindSynchronization, rw.ReaderAspect("read-"+m))
	}
	// Instrumentation innermost: measures body time excluding outer
	// blocking. The obsaudit span aspect rides the same layer.
	if cfg.Metrics != nil || cfg.Obs != nil {
		b.Layer("instrumentation", moderator.Innermost)
	}
	if cfg.Metrics != nil {
		for _, m := range allMethods {
			b.UseIn("instrumentation", m, aspect.KindMetrics,
				cfg.Metrics.Aspect("metrics-"+m))
		}
	}
	if cfg.Obs != nil {
		auditor := obsaudit.New(cfg.Obs)
		for _, m := range allMethods {
			b.UseIn("instrumentation", m, obsaudit.Kind, auditor.Aspect("obs-"+m))
		}
	}

	comp, err := b.Build()
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		comp.Moderator().SetTracer(cfg.Obs)
		cfg.Obs.Watch(comp.Moderator())
	}
	g := &Guarded{component: comp, venue: v, rw: rw}
	if cfg.ShadowSampleEvery > 0 {
		g.shadow = moderator.NewShadow(comp.Moderator(),
			moderator.WithShadowSampleEvery(cfg.ShadowSampleEvery))
		g.shadow.Start()
		comp.Moderator().SetShadow(g.shadow)
		if cfg.Obs != nil {
			cfg.Obs.WatchShadow(g.shadow)
		}
	}
	return g, nil
}

// holderFrom resolves the acting holder: the authenticated principal when
// present, else the explicit argument at index i.
func holderFrom(inv *aspect.Invocation, i int) (string, error) {
	if p := auth.PrincipalOf(inv); p != nil {
		return p.Name, nil
	}
	return inv.ArgString(i)
}

// Proxy returns the guarded entry point.
func (g *Guarded) Proxy() *proxy.Proxy { return g.component.Proxy() }

// Moderator returns the component's moderator.
func (g *Guarded) Moderator() *moderator.Moderator { return g.component.Moderator() }

// Venue returns the underlying functional component, for inspection. Do
// not call its methods directly while guarded invocations are in flight.
func (g *Guarded) Venue() *Venue { return g.venue }

// RWLock returns the synchronization guard state, for inspection.
func (g *Guarded) RWLock() *syncguard.RWLock { return g.rw }

// Shadow returns the shadow-admission engine, or nil when shadow mode is
// off.
func (g *Guarded) Shadow() *moderator.Shadow { return g.shadow }

// StopShadow detaches and retires the shadow engine (no-op when off).
func (g *Guarded) StopShadow() {
	if g.shadow == nil {
		return
	}
	g.Moderator().SetShadow(nil)
	g.shadow.Stop()
}
