// Package reservation implements an on-line reservation system — one of
// the open client/server applications the paper's Section 2 motivates. The
// functional component is a plain, sequential seat inventory; concurrency
// control (readers-writer), authorization, and instrumentation are composed
// around it by the framework in wire.go.
package reservation

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors of the functional component.
var (
	// ErrNoSuchSeat is returned for a seat outside the venue.
	ErrNoSuchSeat = errors.New("reservation: no such seat")
	// ErrSeatTaken is returned when reserving an already-held seat.
	ErrSeatTaken = errors.New("reservation: seat taken")
	// ErrNotHeld is returned when cancelling a seat held by someone else
	// (or nobody).
	ErrNotHeld = errors.New("reservation: seat not held by caller")
)

// Venue is the sequential functional component: a seat map with no
// synchronization of its own. It is NOT safe for unguarded concurrent use.
type Venue struct {
	seats map[string]string // seat -> holder ("" = free)

	reservations  uint64
	cancellations uint64
}

// NewVenue creates a venue with the given seat identifiers.
func NewVenue(seatIDs []string) (*Venue, error) {
	if len(seatIDs) == 0 {
		return nil, errors.New("reservation: venue needs at least one seat")
	}
	seats := make(map[string]string, len(seatIDs))
	for _, id := range seatIDs {
		if id == "" {
			return nil, errors.New("reservation: empty seat id")
		}
		if _, dup := seats[id]; dup {
			return nil, fmt.Errorf("reservation: duplicate seat %q", id)
		}
		seats[id] = ""
	}
	return &Venue{seats: seats}, nil
}

// GridVenue creates a venue with rows x cols seats named "R1C1".."RrCc".
func GridVenue(rows, cols int) (*Venue, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("reservation: grid %dx%d must be positive", rows, cols)
	}
	ids := make([]string, 0, rows*cols)
	for r := 1; r <= rows; r++ {
		for c := 1; c <= cols; c++ {
			ids = append(ids, fmt.Sprintf("R%dC%d", r, c))
		}
	}
	return NewVenue(ids)
}

// Reserve books a seat for holder.
func (v *Venue) Reserve(seat, holder string) error {
	cur, ok := v.seats[seat]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchSeat, seat)
	}
	if cur != "" {
		return fmt.Errorf("%w: %s held by %s", ErrSeatTaken, seat, cur)
	}
	v.seats[seat] = holder
	v.reservations++
	return nil
}

// Cancel releases a seat held by holder.
func (v *Venue) Cancel(seat, holder string) error {
	cur, ok := v.seats[seat]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchSeat, seat)
	}
	if cur != holder || holder == "" {
		return fmt.Errorf("%w: %s", ErrNotHeld, seat)
	}
	v.seats[seat] = ""
	v.cancellations++
	return nil
}

// Holder returns who holds a seat ("" = free).
func (v *Venue) Holder(seat string) (string, error) {
	cur, ok := v.seats[seat]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoSuchSeat, seat)
	}
	return cur, nil
}

// Available returns the sorted identifiers of free seats.
func (v *Venue) Available() []string {
	out := make([]string, 0, len(v.seats))
	for id, holder := range v.seats {
		if holder == "" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Seats returns the total seat count.
func (v *Venue) Seats() int { return len(v.seats) }

// Reservations returns the total successful reservations ever made.
func (v *Venue) Reservations() uint64 { return v.reservations }

// Cancellations returns the total successful cancellations ever made.
func (v *Venue) Cancellations() uint64 { return v.cancellations }
