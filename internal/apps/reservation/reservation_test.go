package reservation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
)

func TestNewVenueValidation(t *testing.T) {
	if _, err := NewVenue(nil); err == nil {
		t.Error("empty venue must error")
	}
	if _, err := NewVenue([]string{""}); err == nil {
		t.Error("empty seat id must error")
	}
	if _, err := NewVenue([]string{"A", "A"}); err == nil {
		t.Error("duplicate seat must error")
	}
	if _, err := GridVenue(0, 5); err == nil {
		t.Error("zero rows must error")
	}
}

func TestVenueSequentialSemantics(t *testing.T) {
	v, err := NewVenue([]string{"A1", "A2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Reserve("A1", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := v.Reserve("A1", "bob"); !errors.Is(err, ErrSeatTaken) {
		t.Fatalf("double reserve: %v", err)
	}
	if err := v.Reserve("Z9", "bob"); !errors.Is(err, ErrNoSuchSeat) {
		t.Fatalf("ghost seat: %v", err)
	}
	holder, err := v.Holder("A1")
	if err != nil || holder != "alice" {
		t.Fatalf("holder = %q, %v", holder, err)
	}
	if err := v.Cancel("A1", "bob"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("cancel by non-holder: %v", err)
	}
	if err := v.Cancel("A2", "alice"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("cancel free seat: %v", err)
	}
	if err := v.Cancel("A1", "alice"); err != nil {
		t.Fatal(err)
	}
	if got := v.Available(); len(got) != 2 {
		t.Errorf("available = %v", got)
	}
	if v.Reservations() != 1 || v.Cancellations() != 1 {
		t.Errorf("counters = %d/%d", v.Reservations(), v.Cancellations())
	}
}

func TestGridVenueNaming(t *testing.T) {
	v, err := GridVenue(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Seats() != 6 {
		t.Fatalf("seats = %d", v.Seats())
	}
	if _, err := v.Holder("R2C3"); err != nil {
		t.Errorf("R2C3 must exist: %v", err)
	}
}

func TestGuardedBasicFlow(t *testing.T) {
	g, err := NewGuarded(GuardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	if _, err := p.Invoke(ctx, MethodReserve, "R1C1", "alice"); err != nil {
		t.Fatal(err)
	}
	holder, err := p.Invoke(ctx, MethodHolder, "R1C1")
	if err != nil || holder != "alice" {
		t.Fatalf("holder = %v, %v", holder, err)
	}
	avail, err := p.Invoke(ctx, MethodAvailable)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(avail.([]string)); got != 99 {
		t.Errorf("available = %d, want 99", got)
	}
	if _, err := p.Invoke(ctx, MethodCancel, "R1C1", "alice"); err != nil {
		t.Fatal(err)
	}
}

func TestGuardedConcurrentContention(t *testing.T) {
	// Many clients race for the same seats through the guarded proxy;
	// exactly one reservation per seat may succeed, and the RW invariants
	// must hold throughout.
	v, err := GridVenue(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuarded(GuardedConfig{Venue: v})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	const clients = 8
	var wg sync.WaitGroup
	wins := make(chan string, clients*16)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			me := fmt.Sprintf("client-%d", c)
			for r := 1; r <= 4; r++ {
				for s := 1; s <= 4; s++ {
					seat := fmt.Sprintf("R%dC%d", r, s)
					_, err := p.Invoke(context.Background(), MethodReserve, seat, me)
					switch {
					case err == nil:
						wins <- seat
					case errors.Is(err, ErrSeatTaken):
						// expected loser
					default:
						t.Errorf("reserve %s: %v", seat, err)
					}
					// Interleave reads.
					if _, err := p.Invoke(context.Background(), MethodHolder, seat); err != nil {
						t.Errorf("holder %s: %v", seat, err)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(wins)
	seen := make(map[string]bool, 16)
	for seat := range wins {
		if seen[seat] {
			t.Errorf("seat %s reserved twice", seat)
		}
		seen[seat] = true
	}
	if len(seen) != 16 {
		t.Errorf("reserved %d seats, want 16", len(seen))
	}
	if err := g.RWLock().CheckInvariants(); err != nil {
		t.Error(err)
	}
	if got := len(v.Available()); got != 0 {
		t.Errorf("available = %d, want 0", got)
	}
}

func TestGuardedWithSecurity(t *testing.T) {
	store := auth.NewTokenStore()
	clientTok := store.Issue("alice", "customer")
	auditorTok := store.Issue("eve", "auditor")
	acl := auth.ACL{
		MethodReserve:   {"customer"},
		MethodCancel:    {"customer"},
		MethodHolder:    {"customer", "auditor"},
		MethodAvailable: {"customer", "auditor"},
	}
	g, err := NewGuarded(GuardedConfig{Authenticator: store, ACL: acl})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()

	// Anonymous: unauthenticated.
	if _, err := p.Invoke(ctx, MethodReserve, "R1C1", "x"); !errors.Is(err, auth.ErrUnauthenticated) {
		t.Fatalf("anonymous: %v", err)
	}
	// Customer can reserve; the principal becomes the holder.
	inv := aspect.NewInvocation(ctx, p.Name(), MethodReserve, []any{"R1C1"})
	auth.WithToken(inv, clientTok)
	if _, err := p.Call(inv); err != nil {
		t.Fatalf("customer reserve: %v", err)
	}
	holder, err := g.Venue().Holder("R1C1")
	if err != nil || holder != "alice" {
		t.Fatalf("holder = %q, %v", holder, err)
	}
	// Auditor can query but not reserve.
	qInv := aspect.NewInvocation(ctx, p.Name(), MethodHolder, []any{"R1C1"})
	auth.WithToken(qInv, auditorTok)
	if _, err := p.Call(qInv); err != nil {
		t.Fatalf("auditor query: %v", err)
	}
	rInv := aspect.NewInvocation(ctx, p.Name(), MethodReserve, []any{"R2C2"})
	auth.WithToken(rInv, auditorTok)
	if _, err := p.Call(rInv); !errors.Is(err, auth.ErrPermissionDenied) {
		t.Fatalf("auditor reserve: %v", err)
	}
}

func TestGuardedMetricsLayer(t *testing.T) {
	rec := metrics.NewRecorder()
	g, err := NewGuarded(GuardedConfig{Metrics: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Proxy().Invoke(context.Background(), MethodAvailable); err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot()[ComponentName+"."+MethodAvailable].Count != 1 {
		t.Errorf("metrics = %v", rec.Keys())
	}
}
