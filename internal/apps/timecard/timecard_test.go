package timecard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
)

// stepClock advances one minute per call.
func stepClock() func() time.Time {
	t0 := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Minute)
	}
}

func TestLedgerPunchLifecycle(t *testing.T) {
	l := NewLedger(WithClock(stepClock()))
	if err := l.PunchIn("alice"); err != nil {
		t.Fatal(err)
	}
	if err := l.PunchIn("alice"); !errors.Is(err, ErrAlreadyIn) {
		t.Fatalf("double punch-in: %v", err)
	}
	session, err := l.PunchOut("alice")
	if err != nil {
		t.Fatal(err)
	}
	if session != time.Minute {
		t.Errorf("session = %v, want 1m", session)
	}
	if _, err := l.PunchOut("alice"); !errors.Is(err, ErrNotIn) {
		t.Fatalf("double punch-out: %v", err)
	}
	card, ok := l.CardOf("alice")
	if !ok || card.Sessions != 1 || card.Worked != time.Minute {
		t.Errorf("card = %+v", card)
	}
}

func TestLedgerSubmitAndDecide(t *testing.T) {
	l := NewLedger(WithClock(stepClock()))
	if _, err := l.Submit("alice"); !errors.Is(err, ErrNothingToSubmit) {
		t.Fatalf("empty submit: %v", err)
	}
	if err := l.PunchIn("alice"); err != nil {
		t.Fatal(err)
	}
	// Submit with an open session closes it implicitly.
	card, err := l.Submit("alice")
	if err != nil {
		t.Fatal(err)
	}
	if card.State != StateSubmitted || card.Sessions != 1 {
		t.Errorf("submitted card = %+v", card)
	}
	// Punching while submitted is rejected.
	if err := l.PunchIn("alice"); !errors.Is(err, ErrNotSubmitted) {
		t.Fatalf("punch-in while submitted: %v", err)
	}
	if got := l.Pending(); len(got) != 1 || got[0] != "alice" {
		t.Errorf("pending = %v", got)
	}
	decided, err := l.Decide("alice", true)
	if err != nil || decided.State != StateApproved {
		t.Fatalf("decide = %+v, %v", decided, err)
	}
	if _, err := l.Decide("alice", true); !errors.Is(err, ErrNotSubmitted) {
		t.Fatalf("double decide: %v", err)
	}
	// After approval a fresh card opens on the next punch.
	if err := l.PunchIn("alice"); err != nil {
		t.Fatalf("punch-in after approval: %v", err)
	}
	card, _ = l.CardOf("alice")
	if card.Sessions != 0 || card.State != StateOpen {
		t.Errorf("fresh card = %+v", card)
	}
}

func TestLedgerReject(t *testing.T) {
	l := NewLedger(WithClock(stepClock()))
	if err := l.PunchIn("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Submit("bob"); err != nil {
		t.Fatal(err)
	}
	card, err := l.Decide("bob", false)
	if err != nil || card.State != StateRejected {
		t.Fatalf("reject = %+v, %v", card, err)
	}
}

func TestGuardedRequiresAuthenticator(t *testing.T) {
	if _, err := NewGuarded(GuardedConfig{}); err == nil {
		t.Fatal("nil authenticator must error")
	}
}

// newGuarded builds the service with one employee and one manager token.
func newGuarded(t *testing.T) (*Guarded, string, string) {
	t.Helper()
	store := auth.NewTokenStore()
	empTok := store.Issue("alice", RoleEmployee)
	mgrTok := store.Issue("mina", RoleManager)
	g, err := NewGuarded(GuardedConfig{
		Authenticator: store,
		Ledger:        NewLedger(WithClock(stepClock())),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, empTok, mgrTok
}

func call(t *testing.T, g *Guarded, token, method string, args ...any) (any, error) {
	t.Helper()
	inv := aspect.NewInvocation(context.Background(), g.Proxy().Name(), method, args)
	auth.WithToken(inv, token)
	return g.Proxy().Call(inv)
}

func TestGuardedEndToEnd(t *testing.T) {
	g, empTok, mgrTok := newGuarded(t)

	// Anonymous calls never reach the ledger.
	if _, err := g.Proxy().Invoke(context.Background(), MethodPunchIn); !errors.Is(err, auth.ErrUnauthenticated) {
		t.Fatalf("anonymous: %v", err)
	}
	// Employee workflow: punch in, out, submit.
	if _, err := call(t, g, empTok, MethodPunchIn); err != nil {
		t.Fatal(err)
	}
	session, err := call(t, g, empTok, MethodPunchOut)
	if err != nil {
		t.Fatal(err)
	}
	if session.(time.Duration) != time.Minute {
		t.Errorf("session = %v", session)
	}
	if _, err := call(t, g, empTok, MethodSubmit); err != nil {
		t.Fatal(err)
	}
	// The employee cannot approve their own card.
	if _, err := call(t, g, empTok, MethodDecide, "alice", true); !errors.Is(err, auth.ErrPermissionDenied) {
		t.Fatalf("employee decide: %v", err)
	}
	// The manager lists pending and approves.
	pending, err := call(t, g, mgrTok, MethodPending)
	if err != nil {
		t.Fatal(err)
	}
	if got := pending.([]string); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("pending = %v", got)
	}
	card, err := call(t, g, mgrTok, MethodDecide, "alice", true)
	if err != nil {
		t.Fatal(err)
	}
	if card.(Card).State != StateApproved {
		t.Errorf("card = %+v", card)
	}
	// The manager cannot punch (not an employee).
	if _, err := call(t, g, mgrTok, MethodPunchIn); !errors.Is(err, auth.ErrPermissionDenied) {
		t.Fatalf("manager punch: %v", err)
	}

	// Every operation — including the denied ones — is on the audit
	// trail, attributed to its principal.
	events := g.Audit().Events()
	if len(events) == 0 {
		t.Fatal("no audit events")
	}
	for _, e := range events {
		if e.Principal == "" {
			t.Fatalf("unattributed audit event: %+v", e)
		}
	}
}

func TestGuardedConcurrentEmployees(t *testing.T) {
	store := auth.NewTokenStore()
	const employees, sessions = 8, 5
	tokens := make([]string, employees)
	for i := range tokens {
		tokens[i] = store.Issue(fmt.Sprintf("emp-%d", i), RoleEmployee)
	}
	mgrTok := store.Issue("mina", RoleManager)
	g, err := NewGuarded(GuardedConfig{Authenticator: store})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := range tokens {
		wg.Add(1)
		go func(tok string) {
			defer wg.Done()
			for k := 0; k < sessions; k++ {
				if _, err := call(t, g, tok, MethodPunchIn); err != nil {
					t.Errorf("punch-in: %v", err)
					return
				}
				if _, err := call(t, g, tok, MethodPunchOut); err != nil {
					t.Errorf("punch-out: %v", err)
					return
				}
			}
			if _, err := call(t, g, tok, MethodSubmit); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(tokens[i])
	}
	wg.Wait()

	pending, err := call(t, g, mgrTok, MethodPending)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pending.([]string)); got != employees {
		t.Fatalf("pending = %d, want %d", got, employees)
	}
	for _, name := range pending.([]string) {
		card, err := call(t, g, mgrTok, MethodDecide, name, true)
		if err != nil {
			t.Fatal(err)
		}
		if c := card.(Card); c.Sessions != sessions {
			t.Errorf("%s sessions = %d, want %d", name, c.Sessions, sessions)
		}
	}
	stats := g.Moderator().Stats()
	if stats.Admissions != stats.Completions {
		t.Errorf("unbalanced moderator: %+v", stats)
	}
}
