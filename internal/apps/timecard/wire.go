package timecard

import (
	"repro/internal/aspect"
	"repro/internal/aspects/audit"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/sched"
	"repro/internal/aspects/syncguard"
	"repro/internal/core"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// Method names of the participating methods.
const (
	MethodPunchIn  = "punch-in"
	MethodPunchOut = "punch-out"
	MethodSubmit   = "submit"
	MethodDecide   = "decide"
	MethodPending  = "pending"
)

// ComponentName is the guarded component's registered name.
const ComponentName = "timecard"

// Roles used by the default ACL.
const (
	RoleEmployee = "employee"
	RoleManager  = "manager"
)

// DefaultACL authorizes employees to punch and submit, managers to decide;
// both may list pending cards.
func DefaultACL() auth.ACL {
	return auth.ACL{
		MethodPunchIn:  {RoleEmployee},
		MethodPunchOut: {RoleEmployee},
		MethodSubmit:   {RoleEmployee},
		MethodDecide:   {RoleManager},
		MethodPending:  {RoleEmployee, RoleManager},
	}
}

// Guarded is the framework-composed timecard service: readers-writer
// synchronization over the ledger, mandatory authentication and
// authorization (timecards are payroll records), per-employee fair-share
// scheduling of punches, and a mandatory audit trail.
type Guarded struct {
	component *core.Component
	ledger    *Ledger
	trail     *audit.Trail
}

// GuardedConfig configures NewGuarded. Authenticator is required: unlike
// the ticket example, a timecard system is never anonymous.
type GuardedConfig struct {
	// Ledger is the functional component (default: a fresh one).
	Ledger *Ledger
	// Authenticator validates bearer tokens (required).
	Authenticator *auth.TokenStore
	// ACL overrides DefaultACL when non-nil.
	ACL auth.ACL
	// AuditCapacity sizes the mandatory audit trail (default 1024).
	AuditCapacity int
	// FairSharePerEmployee bounds concurrent punch operations per
	// employee (default 1).
	FairSharePerEmployee int
	// ModeratorOptions forwards wake policy/mode to the moderator.
	ModeratorOptions []moderator.Option
}

// NewGuarded assembles the guarded timecard service.
func NewGuarded(cfg GuardedConfig) (*Guarded, error) {
	if cfg.Authenticator == nil {
		return nil, errNilAuthenticator
	}
	l := cfg.Ledger
	if l == nil {
		l = NewLedger()
	}
	acl := cfg.ACL
	if acl == nil {
		acl = DefaultACL()
	}
	auditCap := cfg.AuditCapacity
	if auditCap <= 0 {
		auditCap = 1024
	}
	trail, err := audit.NewTrail(auditCap)
	if err != nil {
		return nil, err
	}
	perEmployee := cfg.FairSharePerEmployee
	if perEmployee <= 0 {
		perEmployee = 1
	}

	writeMethods := []string{MethodPunchIn, MethodPunchOut, MethodSubmit, MethodDecide}
	readMethods := []string{MethodPending}
	allMethods := append(append([]string{}, writeMethods...), readMethods...)
	rw := syncguard.NewRWLock(allMethods...)
	fair, err := sched.NewFairShare(perEmployee, func(inv *aspect.Invocation) string {
		if p := auth.PrincipalOf(inv); p != nil {
			return p.Name
		}
		return ""
	}, MethodPunchIn, MethodPunchOut, MethodSubmit)
	if err != nil {
		return nil, err
	}

	b := core.NewComponent(ComponentName, core.WithModeratorOptions(cfg.ModeratorOptions...))
	// The acting employee is always the authenticated principal: the
	// component never trusts a caller-supplied identity for self-service
	// operations.
	principalName := func(inv *aspect.Invocation) string {
		if p := auth.PrincipalOf(inv); p != nil {
			return p.Name
		}
		return ""
	}
	b.Bind(MethodPunchIn, func(inv *aspect.Invocation) (any, error) {
		return nil, l.PunchIn(principalName(inv))
	})
	b.Bind(MethodPunchOut, func(inv *aspect.Invocation) (any, error) {
		return l.PunchOut(principalName(inv))
	})
	b.Bind(MethodSubmit, func(inv *aspect.Invocation) (any, error) {
		return l.Submit(principalName(inv))
	})
	b.Bind(MethodDecide, func(inv *aspect.Invocation) (any, error) {
		employee, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		approve := true
		if inv.NumArgs() > 1 {
			if v, ok := inv.Arg(1).(bool); ok {
				approve = v
			}
		}
		return l.Decide(employee, approve)
	})
	b.Bind(MethodPending, func(*aspect.Invocation) (any, error) {
		return l.Pending(), nil
	})

	// Security layer: authentication, then authorization, then audit.
	// The audit aspect sits inside the security layer so every recorded
	// event is attributed to an authenticated principal, and an inner
	// layer's abort still reaches the trail through the audit aspect's
	// cancel hook.
	b.Layer("security", moderator.Outermost)
	for _, m := range allMethods {
		b.UseIn("security", m, aspect.KindAuthentication,
			auth.Authenticator("authn-"+m, cfg.Authenticator))
		b.UseIn("security", m, aspect.KindAuthorization,
			auth.Authorizer("authz-"+m, acl))
		b.UseIn("security", m, aspect.KindAudit, trail.Aspect("audit-"+m))
	}
	// Scheduling: one in-flight punch per employee.
	for _, m := range []string{MethodPunchIn, MethodPunchOut, MethodSubmit} {
		b.Use(m, aspect.KindScheduling, fair.Aspect("fair-"+m))
	}
	// Synchronization: readers-writer over the ledger.
	for _, m := range writeMethods {
		b.Use(m, aspect.KindSynchronization, rw.WriterAspect("write-"+m))
	}
	for _, m := range readMethods {
		b.Use(m, aspect.KindSynchronization, rw.ReaderAspect("read-"+m))
	}

	comp, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Guarded{component: comp, ledger: l, trail: trail}, nil
}

var errNilAuthenticator = &configError{"timecard: authenticator is required"}

type configError struct{ msg string }

func (e *configError) Error() string { return e.msg }

// Proxy returns the guarded entry point.
func (g *Guarded) Proxy() *proxy.Proxy { return g.component.Proxy() }

// Moderator returns the component's moderator.
func (g *Guarded) Moderator() *moderator.Moderator { return g.component.Moderator() }

// Ledger returns the underlying functional component, for inspection. Do
// not call its methods directly while guarded invocations are in flight.
func (g *Guarded) Ledger() *Ledger { return g.ledger }

// Audit returns the mandatory audit trail.
func (g *Guarded) Audit() *audit.Trail { return g.trail }
