// Package timecard implements a timecard reporting system — the last of
// the four client/server applications the paper's Section 2 motivates.
// Employees punch in and out and submit their week; managers approve or
// reject submissions. The Ledger is plain sequential code; synchronization,
// authorization, fair-share scheduling, and the audit trail are composed
// around it in wire.go.
package timecard

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Sentinel errors of the functional component.
var (
	// ErrAlreadyIn is returned when punching in twice.
	ErrAlreadyIn = errors.New("timecard: already punched in")
	// ErrNotIn is returned when punching out without punching in.
	ErrNotIn = errors.New("timecard: not punched in")
	// ErrNothingToSubmit is returned when submitting an empty card.
	ErrNothingToSubmit = errors.New("timecard: nothing to submit")
	// ErrNotSubmitted is returned when deciding a card that is not
	// awaiting approval.
	ErrNotSubmitted = errors.New("timecard: not submitted")
)

// CardState is a timecard's lifecycle position.
type CardState string

// Lifecycle states.
const (
	StateOpen      CardState = "open"
	StateSubmitted CardState = "submitted"
	StateApproved  CardState = "approved"
	StateRejected  CardState = "rejected"
)

// Card is one employee's current timecard.
type Card struct {
	Employee string        `json:"employee"`
	State    CardState     `json:"state"`
	Worked   time.Duration `json:"worked"`
	Sessions int           `json:"sessions"`
	openedAt time.Time
	punched  bool
}

// Ledger is the sequential functional component. It is NOT safe for
// unguarded concurrent use.
type Ledger struct {
	cards map[string]*Card
	now   func() time.Time
}

// LedgerOption configures NewLedger.
type LedgerOption func(*Ledger)

// WithClock overrides the punch clock (tests).
func WithClock(now func() time.Time) LedgerOption {
	return func(l *Ledger) { l.now = now }
}

// NewLedger creates an empty ledger.
func NewLedger(opts ...LedgerOption) *Ledger {
	l := &Ledger{
		cards: make(map[string]*Card, 16),
		now:   time.Now,
	}
	for _, opt := range opts {
		opt(l)
	}
	return l
}

// card returns (creating if needed) an employee's current card.
func (l *Ledger) card(employee string) *Card {
	c, ok := l.cards[employee]
	if !ok || c.State == StateApproved || c.State == StateRejected {
		c = &Card{Employee: employee, State: StateOpen}
		l.cards[employee] = c
	}
	return c
}

// PunchIn starts a work session for the employee.
func (l *Ledger) PunchIn(employee string) error {
	c := l.card(employee)
	if c.punched {
		return fmt.Errorf("%w: %s", ErrAlreadyIn, employee)
	}
	if c.State != StateOpen {
		return fmt.Errorf("%w: card is %s", ErrNotSubmitted, c.State)
	}
	c.punched = true
	c.openedAt = l.now()
	return nil
}

// PunchOut ends the current work session, accumulating worked time.
func (l *Ledger) PunchOut(employee string) (time.Duration, error) {
	c := l.card(employee)
	if !c.punched {
		return 0, fmt.Errorf("%w: %s", ErrNotIn, employee)
	}
	session := l.now().Sub(c.openedAt)
	if session < 0 {
		session = 0
	}
	c.punched = false
	c.Worked += session
	c.Sessions++
	return session, nil
}

// Submit moves the employee's card to the submitted state.
func (l *Ledger) Submit(employee string) (Card, error) {
	c := l.card(employee)
	if c.punched {
		// An open session is closed implicitly at submission.
		if _, err := l.PunchOut(employee); err != nil {
			return Card{}, err
		}
	}
	if c.Sessions == 0 {
		return Card{}, fmt.Errorf("%w: %s", ErrNothingToSubmit, employee)
	}
	if c.State != StateOpen {
		return Card{}, fmt.Errorf("%w: card is %s", ErrNotSubmitted, c.State)
	}
	c.State = StateSubmitted
	return *c, nil
}

// Decide approves or rejects a submitted card.
func (l *Ledger) Decide(employee string, approve bool) (Card, error) {
	c, ok := l.cards[employee]
	if !ok || c.State != StateSubmitted {
		return Card{}, fmt.Errorf("%w: %s", ErrNotSubmitted, employee)
	}
	if approve {
		c.State = StateApproved
	} else {
		c.State = StateRejected
	}
	return *c, nil
}

// CardOf returns a copy of an employee's current card.
func (l *Ledger) CardOf(employee string) (Card, bool) {
	c, ok := l.cards[employee]
	if !ok {
		return Card{}, false
	}
	return *c, true
}

// Pending returns the employees with submitted cards, sorted.
func (l *Ledger) Pending() []string {
	out := make([]string, 0, len(l.cards))
	for name, c := range l.cards {
		if c.State == StateSubmitted {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
