// Package integration_test exercises the framework across module
// boundaries: the full Figure-1 architecture, the initialization and
// invocation sequences of Figures 2-3, the adaptability scenario of
// Figures 13-18, aspect reuse across all three applications, and the
// distributed stack (naming + amrpc + guarded components).
package integration_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/auction"
	"repro/internal/apps/reservation"
	"repro/internal/apps/ticket"
	"repro/internal/aspect"
	"repro/internal/aspects/audit"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/fault"
	"repro/internal/aspects/metrics"
	"repro/internal/aspects/sched"
	"repro/internal/naming"
)

// TestFullStackTicketScenario wires the complete paper architecture —
// synchronization + audit + metrics aspects, then a runtime authentication
// layer — and runs the trouble-ticketing workload through it.
func TestFullStackTicketScenario(t *testing.T) {
	trail, err := audit.NewTrail(4096)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	g, err := ticket.NewGuarded(ticket.GuardedConfig{
		Capacity: 4,
		Audit:    trail,
		Metrics:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := auth.NewTokenStore()
	tok := store.Issue("alice", "client")
	if err := g.EnableAuthentication(store); err != nil {
		t.Fatal(err)
	}

	p := g.Proxy()
	const workers, per = 4, 20
	total := workers * per
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				inv := aspect.NewInvocation(context.Background(), p.Name(), ticket.MethodOpen,
					[]any{fmt.Sprintf("t-%d-%d", w, k), "summary"})
				auth.WithToken(inv, tok)
				if _, err := p.Call(inv); err != nil {
					t.Errorf("open: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				inv := aspect.NewInvocation(context.Background(), p.Name(), ticket.MethodAssign, nil)
				auth.WithToken(inv, tok)
				if _, err := p.Call(inv); err != nil {
					t.Errorf("assign: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if g.Server().Size() != 0 {
		t.Errorf("final buffer size = %d", g.Server().Size())
	}
	// Audit saw 2 events per successful invocation, attributed to alice.
	if got := trail.Seq(); got != uint64(2*2*total) {
		t.Errorf("audit events = %d, want %d", got, 2*2*total)
	}
	for _, e := range trail.Events() {
		if e.Principal != "alice" {
			t.Fatalf("unattributed audit event: %+v", e)
		}
	}
	// Metrics counted both methods.
	snap := rec.Snapshot()
	opens := snap[ticket.ComponentName+"."+ticket.MethodOpen].Count
	assigns := snap[ticket.ComponentName+"."+ticket.MethodAssign].Count
	if opens != uint64(total) || assigns != uint64(total) {
		t.Errorf("metrics counts = %d/%d, want %d each", opens, assigns, total)
	}
	// Moderator bookkeeping is balanced.
	stats := g.Moderator().Stats()
	if stats.Admissions != stats.Completions {
		t.Errorf("admissions %d != completions %d", stats.Admissions, stats.Completions)
	}
}

// TestAdaptabilityUnderLoad adds and removes the authentication layer while
// invocations are in flight — the paper's open-system claim, sharpened.
func TestAdaptabilityUnderLoad(t *testing.T) {
	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	store := auth.NewTokenStore()
	tok := store.Issue("alice")
	p := g.Proxy()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := g.EnableAuthentication(store); err != nil {
				t.Errorf("enable: %v", err)
				return
			}
			if err := g.DisableAuthentication(); err != nil {
				t.Errorf("disable: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				// Every call carries a valid token, so it succeeds whether
				// or not the auth layer is present at admission time.
				inv := aspect.NewInvocation(context.Background(), p.Name(), ticket.MethodOpen,
					[]any{fmt.Sprintf("t-%d-%d", w, k), "s"})
				auth.WithToken(inv, tok)
				if _, err := p.Call(inv); err != nil {
					t.Errorf("open: %v", err)
					return
				}
				inv2 := aspect.NewInvocation(context.Background(), p.Name(), ticket.MethodAssign, nil)
				auth.WithToken(inv2, tok)
				if _, err := p.Call(inv2); err != nil {
					t.Errorf("assign: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if err := g.Buffer().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestAspectReuseAcrossApplications registers the *same* aspect collaborator
// types (metrics recorder, token store) with all three applications — the
// reuse the paper claims separation buys.
func TestAspectReuseAcrossApplications(t *testing.T) {
	rec := metrics.NewRecorder()
	store := auth.NewTokenStore()
	tok := store.Issue("alice", "customer", "bidder", "seller", "client")

	tg, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 4, Metrics: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.EnableAuthentication(store); err != nil {
		t.Fatal(err)
	}
	rg, err := reservation.NewGuarded(reservation.GuardedConfig{
		Authenticator: store,
		Metrics:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := auction.NewGuarded(auction.GuardedConfig{
		Authenticator: store,
		Metrics:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	call := func(p interface {
		Name() string
		Call(*aspect.Invocation) (any, error)
	}, method string, args ...any) error {
		inv := aspect.NewInvocation(ctx, p.Name(), method, args)
		auth.WithToken(inv, tok)
		_, err := p.Call(inv)
		return err
	}
	if err := call(tg.Proxy(), ticket.MethodOpen, "t1", "s"); err != nil {
		t.Fatal(err)
	}
	if err := call(rg.Proxy(), reservation.MethodReserve, "R1C1"); err != nil {
		t.Fatal(err)
	}
	if err := call(ag.Proxy(), auction.MethodList, "vase", 10.0); err != nil {
		t.Fatal(err)
	}

	// One recorder saw all three components.
	keys := rec.Keys()
	wantPrefixes := []string{
		auction.ComponentName + ".",
		reservation.ComponentName + ".",
		ticket.ComponentName + ".",
	}
	for _, prefix := range wantPrefixes {
		found := false
		for _, k := range keys {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("recorder missing %q measurements: %v", prefix, keys)
		}
	}
}

// TestDistributedStackWithNaming runs the full distributed topology: a
// naming server, an amrpc server hosting the guarded ticket component that
// registers itself, and a client that discovers it by name.
func TestDistributedStackWithNaming(t *testing.T) {
	// Naming service.
	nsrv := naming.NewServer(nil)
	nln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := nsrv.Serve(nln); err != nil {
			t.Errorf("naming serve: %v", err)
		}
	}()
	defer func() {
		nsrv.Close()
		wg.Wait()
	}()

	// Guarded component behind amrpc.
	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	rsrv := amrpc.NewServer()
	if err := rsrv.Register(g.Proxy()); err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := rsrv.Serve(rln); err != nil {
			t.Errorf("amrpc serve: %v", err)
		}
	}()
	defer rsrv.Close()

	// The server announces itself.
	announcer, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = announcer.Close() }()
	if err := announcer.Register(ticket.ComponentName, rln.Addr().String(), time.Minute); err != nil {
		t.Fatal(err)
	}

	// The client discovers and invokes.
	resolver, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resolver.Close() }()
	entry, err := resolver.Lookup(ticket.ComponentName)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := amrpc.Dial(entry.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rc.Close() }()
	stub := rc.Component(ticket.ComponentName)
	if _, err := stub.Invoke(context.Background(), ticket.MethodOpen, "t1", "remote"); err != nil {
		t.Fatal(err)
	}
	res, err := stub.Invoke(context.Background(), ticket.MethodAssign)
	if err != nil {
		t.Fatal(err)
	}
	if m := res.(map[string]any); m["id"] != "t1" {
		t.Errorf("remote assign = %v", res)
	}
}

// TestFaultToleranceComposition stacks retry middleware over a breaker-
// guarded flaky component: the retries ride through transient failures,
// the breaker sheds when the component stays down.
func TestFaultToleranceComposition(t *testing.T) {
	fails := 0
	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A scheduling-kind chaos aspect that fails the first 2 admissions.
	chaotic := aspect.New("chaos", aspect.KindScheduling, func(inv *aspect.Invocation) aspect.Verdict {
		if fails < 2 {
			fails++
			inv.SetErr(errors.New("transient outage"))
			return aspect.Abort
		}
		return aspect.Resume
	}, nil)
	if err := g.Moderator().Register(ticket.MethodOpen, aspect.KindScheduling, chaotic); err != nil {
		t.Fatal(err)
	}
	r, err := fault.Retry(g.Proxy(), fault.RetryPolicy{MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(context.Background(), ticket.MethodOpen, "t1", "s"); err != nil {
		t.Fatalf("retried open: %v", err)
	}
	if fails != 2 {
		t.Errorf("chaos admissions = %d", fails)
	}
	if err := g.Buffer().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestSchedulingComposition: a rate limiter in shed mode composed over the
// ticket component rejects the burst overflow with ErrShed end to end.
func TestSchedulingComposition(t *testing.T) {
	now := time.Unix(2000, 0)
	rl, err := sched.NewRateLimiter(sched.RateLimiterConfig{
		Rate:  1,
		Burst: 2,
		Mode:  sched.Shed,
		Now:   func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Moderator().Register(ticket.MethodOpen, aspect.KindScheduling, rl.Aspect("limiter")); err != nil {
		t.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	for k := 0; k < 2; k++ {
		if _, err := p.Invoke(ctx, ticket.MethodOpen, fmt.Sprintf("t%d", k), "s"); err != nil {
			t.Fatalf("burst call %d: %v", k, err)
		}
	}
	if _, err := p.Invoke(ctx, ticket.MethodOpen, "t-over", "s"); !errors.Is(err, sched.ErrShed) {
		t.Fatalf("over-burst call: %v", err)
	}
}
