package aspect

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestVerdictString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{Resume, "resume"},
		{Block, "block"},
		{Abort, "abort"},
		{Verdict(0), "verdict(0)"},
		{Verdict(42), "verdict(42)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(c.v), got, c.want)
		}
	}
}

func TestVerdictValid(t *testing.T) {
	for _, v := range []Verdict{Resume, Block, Abort} {
		if !v.Valid() {
			t.Errorf("%v should be valid", v)
		}
	}
	for _, v := range []Verdict{0, 4, -1, 100} {
		if v.Valid() {
			t.Errorf("Verdict(%d) should be invalid", int(v))
		}
	}
}

func TestVerdictZeroValueIsInvalid(t *testing.T) {
	// The zero value must not silently mean Resume: a forgotten return
	// in an aspect should be caught by the moderator's validity check.
	var v Verdict
	if v.Valid() {
		t.Fatal("zero Verdict must be invalid")
	}
}

func TestKindValidate(t *testing.T) {
	if err := KindSynchronization.Validate(); err != nil {
		t.Errorf("builtin kind invalid: %v", err)
	}
	if err := Kind("custom-thing").Validate(); err != nil {
		t.Errorf("custom kind invalid: %v", err)
	}
	if err := Kind("").Validate(); err == nil {
		t.Error("empty kind must not validate")
	}
}

func TestBuiltinKindsDistinct(t *testing.T) {
	kinds := []Kind{
		KindSynchronization, KindScheduling, KindAuthentication,
		KindAuthorization, KindFaultTolerance, KindAudit, KindMetrics,
	}
	seen := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("duplicate kind %q", k)
		}
		seen[k] = true
	}
}

func TestFuncDefaults(t *testing.T) {
	f := &Func{}
	inv := NewInvocation(context.Background(), "c", "m", nil)
	if got := f.Precondition(inv); got != Resume {
		t.Errorf("nil Pre hook: got %v, want Resume", got)
	}
	f.Postaction(inv) // must not panic
	f.Cancel(inv)     // must not panic
	if got := f.Name(); got != "anonymous" {
		t.Errorf("empty name: got %q", got)
	}
	if f.Wakes() != nil {
		t.Errorf("default Wakes: got %v, want nil", f.Wakes())
	}
}

func TestFuncHooksInvoked(t *testing.T) {
	var pre, post, cancel int
	f := &Func{
		AspectName: "counting",
		AspectKind: KindAudit,
		Pre: func(inv *Invocation) Verdict {
			pre++
			return Block
		},
		Post:     func(inv *Invocation) { post++ },
		CancelFn: func(inv *Invocation) { cancel++ },
		WakeList: []string{"open", "assign"},
	}
	inv := NewInvocation(context.Background(), "c", "m", nil)
	if got := f.Precondition(inv); got != Block {
		t.Errorf("Precondition = %v, want Block", got)
	}
	f.Postaction(inv)
	f.Cancel(inv)
	if pre != 1 || post != 1 || cancel != 1 {
		t.Errorf("hook counts = %d/%d/%d, want 1/1/1", pre, post, cancel)
	}
	if f.Name() != "counting" || f.Kind() != KindAudit {
		t.Errorf("identity: %q/%q", f.Name(), f.Kind())
	}
	if len(f.Wakes()) != 2 {
		t.Errorf("Wakes = %v", f.Wakes())
	}
}

func TestNewConstructor(t *testing.T) {
	a := New("n", KindMetrics, nil, nil)
	if a.Name() != "n" || a.Kind() != KindMetrics {
		t.Fatalf("New: %q/%q", a.Name(), a.Kind())
	}
	inv := NewInvocation(context.Background(), "c", "m", nil)
	if a.Precondition(inv) != Resume {
		t.Fatal("nil pre must default to Resume")
	}
}

func TestInvocationIdentity(t *testing.T) {
	a := NewInvocation(context.Background(), "ticket", "open", []any{"t-1"})
	b := NewInvocation(context.Background(), "ticket", "open", []any{"t-2"})
	if a.ID() == b.ID() {
		t.Error("invocation IDs must be unique")
	}
	if a.Component() != "ticket" || a.Method() != "open" {
		t.Errorf("identity: %s.%s", a.Component(), a.Method())
	}
	if !strings.Contains(a.String(), "ticket.open#") {
		t.Errorf("String = %q", a.String())
	}
	if a.Created().IsZero() {
		t.Error("Created must be set")
	}
}

func TestInvocationNilContextDefaults(t *testing.T) {
	inv := NewInvocation(nil, "c", "m", nil) //nolint:staticcheck // deliberate nil
	if inv.Context() == nil {
		t.Fatal("nil ctx must default to Background")
	}
	select {
	case <-inv.Context().Done():
		t.Fatal("background context must not be done")
	default:
	}
}

func TestInvocationArgs(t *testing.T) {
	inv := NewInvocation(context.Background(), "c", "m", []any{"s", 7, 2.5})
	if inv.NumArgs() != 3 {
		t.Fatalf("NumArgs = %d", inv.NumArgs())
	}
	if inv.Arg(0) != "s" || inv.Arg(1) != 7 {
		t.Errorf("Arg values wrong: %v %v", inv.Arg(0), inv.Arg(1))
	}
	if inv.Arg(-1) != nil || inv.Arg(3) != nil {
		t.Error("out-of-range Arg must be nil")
	}
}

func TestArgString(t *testing.T) {
	inv := NewInvocation(context.Background(), "c", "m", []any{"hello", 5})
	s, err := inv.ArgString(0)
	if err != nil || s != "hello" {
		t.Errorf("ArgString(0) = %q, %v", s, err)
	}
	if _, err := inv.ArgString(1); err == nil {
		t.Error("ArgString on int must error")
	}
	if _, err := inv.ArgString(9); err == nil {
		t.Error("ArgString out of range must error")
	}
}

func TestArgInt(t *testing.T) {
	inv := NewInvocation(context.Background(), "c", "m",
		[]any{7, int64(8), float64(9), float64(9.5), "10", "x", nil, uint(11), int32(12)})
	cases := []struct {
		i      int
		want   int
		wantOK bool
	}{
		{0, 7, true},
		{1, 8, true},
		{2, 9, true},
		{3, 0, false}, // non-integral float
		{4, 10, true},
		{5, 0, false}, // non-numeric string
		{6, 0, false}, // nil
		{7, 11, true},
		{8, 12, true},
		{99, 0, false}, // out of range
	}
	for _, c := range cases {
		got, err := inv.ArgInt(c.i)
		if (err == nil) != c.wantOK {
			t.Errorf("ArgInt(%d) err = %v, wantOK=%v", c.i, err, c.wantOK)
			continue
		}
		if c.wantOK && got != c.want {
			t.Errorf("ArgInt(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestArgFloat(t *testing.T) {
	inv := NewInvocation(context.Background(), "c", "m",
		[]any{1.5, float32(2.5), 3, int64(4), "5.5", "z", nil, struct{}{}})
	cases := []struct {
		i      int
		want   float64
		wantOK bool
	}{
		{0, 1.5, true},
		{1, 2.5, true},
		{2, 3, true},
		{3, 4, true},
		{4, 5.5, true},
		{5, 0, false},
		{6, 0, false},
		{7, 0, false},
	}
	for _, c := range cases {
		got, err := inv.ArgFloat(c.i)
		if (err == nil) != c.wantOK {
			t.Errorf("ArgFloat(%d) err = %v, wantOK=%v", c.i, err, c.wantOK)
			continue
		}
		if c.wantOK && got != c.want {
			t.Errorf("ArgFloat(%d) = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestAttrs(t *testing.T) {
	type key struct{}
	inv := NewInvocation(context.Background(), "c", "m", nil)
	if inv.Attr(key{}) != nil {
		t.Error("unset attr must be nil")
	}
	inv.SetAttr(key{}, 42)
	if got := inv.Attr(key{}); got != 42 {
		t.Errorf("Attr = %v", got)
	}
	inv.SetAttr(key{}, 43)
	if got := inv.Attr(key{}); got != 43 {
		t.Errorf("overwritten Attr = %v", got)
	}
	inv.DeleteAttr(key{})
	if inv.Attr(key{}) != nil {
		t.Error("deleted attr must be nil")
	}
	// Deleting from an invocation with no attrs must not panic.
	fresh := NewInvocation(context.Background(), "c", "m", nil)
	fresh.DeleteAttr(key{})
}

func TestResultAndErr(t *testing.T) {
	inv := NewInvocation(context.Background(), "c", "m", nil)
	if inv.Result() != nil || inv.Err() != nil {
		t.Fatal("fresh invocation must have nil result/err")
	}
	cause := errors.New("boom")
	inv.SetResult("r", cause)
	if inv.Result() != "r" || !errors.Is(inv.Err(), cause) {
		t.Errorf("result=%v err=%v", inv.Result(), inv.Err())
	}
	inv.SetErr(nil)
	if inv.Err() != nil {
		t.Error("SetErr(nil) must clear")
	}
}

func TestInvocationIDsMonotonicProperty(t *testing.T) {
	// Property: successive invocations from one goroutine have strictly
	// increasing IDs.
	f := func(n uint8) bool {
		count := int(n%16) + 2
		var prev uint64
		for i := 0; i < count; i++ {
			inv := NewInvocation(context.Background(), "c", "m", nil)
			if inv.ID() <= prev {
				return false
			}
			prev = inv.ID()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrsRoundTripProperty(t *testing.T) {
	// Property: for any set of distinct string keys and int values,
	// setting then reading each returns the stored value.
	type skey string
	f := func(keys []string, vals []int16) bool {
		inv := NewInvocation(context.Background(), "c", "m", nil)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := make(map[skey]int16, n)
		for i := 0; i < n; i++ {
			want[skey(keys[i])] = vals[i]
		}
		for k, v := range want {
			inv.SetAttr(k, v)
		}
		for k, v := range want {
			if inv.Attr(k) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
