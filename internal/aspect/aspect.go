// Package aspect defines the core abstractions of the Aspect Moderator
// framework: aspects, the verdicts their preconditions return, the concern
// taxonomy (kinds), and the invocation join-point record that flows through
// a guarded method call.
//
// An Aspect captures one cross-cutting concern (synchronization, scheduling,
// authentication, ...) for one participating method of a functional
// component. Its Precondition is evaluated during the pre-activation phase
// of a method invocation and yields a Verdict: the call proceeds (Resume),
// the caller parks on a wait queue until a post-activation notification
// (Block), or the call fails (Abort). Its Postaction runs during the
// post-activation phase, after the method body has executed.
//
// Aspects are passive: they are driven by a moderator, which guarantees that
// Precondition, Postaction, and Cancel for all aspects of one admission
// domain — one participating method, or one explicitly declared method
// group — are executed under mutual exclusion: either the domain's
// admission lock, or (for uncontended admissions on an
// optimistic-eligible plan) the domain's guard cell, which every
// guard-state access — locked or optimistic — holds. The two are never
// held by different hook invocations at once, so aspect implementations
// need no internal locking for state that is only touched from those
// hooks, provided every method the state spans belongs to the same
// domain. An aspect that implements Waker with a non-empty wake list has
// its methods grouped automatically; wiring code can also declare groups
// with the moderator's GroupMethods.
package aspect

import (
	"errors"
	"fmt"
)

// Verdict is the result of evaluating an aspect's precondition during the
// pre-activation phase of a method invocation.
type Verdict int

const (
	// Resume admits the invocation: this aspect's constraints are
	// satisfied and any admission bookkeeping has been performed.
	Resume Verdict = iota + 1
	// Block parks the caller on the method's wait queue. The moderator
	// re-evaluates the enclosing layer's preconditions after a
	// post-activation notification.
	Block
	// Abort rejects the invocation. The moderator unwinds every aspect
	// admitted so far (calling Cancel on those that implement Canceler)
	// and surfaces ErrAborted, or the error the aspect recorded on the
	// invocation via SetErr.
	Abort
)

// String returns the lower-case name of the verdict.
func (v Verdict) String() string {
	switch v {
	case Resume:
		return "resume"
	case Block:
		return "block"
	case Abort:
		return "abort"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Valid reports whether v is one of the three defined verdicts.
func (v Verdict) Valid() bool {
	return v == Resume || v == Block || v == Abort
}

// Kind identifies the concern dimension an aspect belongs to. Together with
// the participating method name it forms the coordinates of the aspect bank:
// the two-dimensional (method x kind) composition structure of the paper.
//
// Kind is an open, string-based taxonomy: the constants below cover the
// concerns the paper names, and applications may introduce their own kinds.
type Kind string

// Concern kinds named by the paper.
const (
	KindSynchronization Kind = "synchronization"
	KindScheduling      Kind = "scheduling"
	KindAuthentication  Kind = "authentication"
	KindAuthorization   Kind = "authorization"
	KindFaultTolerance  Kind = "fault-tolerance"
	KindAudit           Kind = "audit"
	KindMetrics         Kind = "metrics"
)

// Validate reports an error if the kind is empty.
func (k Kind) Validate() error {
	if k == "" {
		return errors.New("aspect: empty kind")
	}
	return nil
}

// ErrAborted is the sentinel error surfaced when a precondition returns
// Abort without recording a more specific cause on the invocation.
var ErrAborted = errors.New("aspect: invocation aborted")

// Aspect is a first-class representation of one concern attached to one
// participating method.
//
// The moderator invokes Precondition during pre-activation and Postaction
// during post-activation, both while holding the component's admission lock.
// A Precondition that performs admission bookkeeping (reserving a slot,
// incrementing an active counter) must do so before returning Resume, and
// should implement Canceler to undo that bookkeeping if a later aspect
// aborts or blocks the same invocation.
type Aspect interface {
	// Name identifies the aspect instance for diagnostics and auditing.
	Name() string
	// Kind is the concern dimension this aspect occupies in the bank.
	Kind() Kind
	// Precondition validates (and, on success, records) admission of the
	// invocation. It must be quick and must not block internally: to
	// delay a caller it returns Block and lets the moderator park it.
	Precondition(inv *Invocation) Verdict
	// Postaction updates aspect state after the method body has run.
	// It may inspect the invocation's result and error.
	Postaction(inv *Invocation)
}

// Canceler is implemented by aspects whose Precondition has side effects
// that must be rolled back when a later aspect blocks or aborts the same
// invocation. Cancel is called in reverse admission order, under the
// admission lock, exactly once per successful Precondition that did not
// reach Postaction.
type Canceler interface {
	Cancel(inv *Invocation)
}

// Abandoner is implemented by aspects whose Precondition records state
// even when returning Block (a barrier arrival, a declared write intent).
// When a caller blocked by this aspect abandons the wait — its context is
// cancelled — the moderator calls Abandon under the admission lock so the
// aspect can retract what the blocked caller had registered. It is not
// called when the caller is woken normally (the re-evaluated Precondition
// sees the state instead).
type Abandoner interface {
	Abandon(inv *Invocation)
}

// NonBlocking is implemented by aspects that declare their Precondition
// never returns Block and that none of their hooks touch cross-invocation
// guard state (state shared between invocations that the admission lock
// would otherwise serialize). Stateless authentication checks, passive
// audit/metrics recorders, and aspects whose state is internally
// synchronized (atomics, their own mutex) qualify; capacity guards,
// semaphores, and barriers do not.
//
// The declaration is a capability grant: when every aspect guarding a
// method is NonBlocking, the moderator may evaluate the whole stack on a
// lock-free fast path — no admission mutex, no wake broadcast — because a
// stack that cannot block and touches no guard state can neither park a
// caller nor unblock one. NonBlocking preconditions may still return
// Abort (rejecting is not blocking); Cancel hooks run as usual during
// rollback.
//
// NonBlocking is consulted when the composition snapshot is published
// (registration, layer churn, grouping), not per invocation. Returning
// Block from a Precondition that declared NonBlocking is a contract
// violation: the fast path rejects the invocation with an error instead
// of parking the caller.
type NonBlocking interface {
	// NonBlocking reports whether the aspect honours the contract above.
	NonBlocking() bool
}

// Waker is implemented by aspects whose Postaction changes state that
// blocked callers of other methods may be waiting on. Wakes returns the
// names of the methods whose wait queues should be notified after this
// aspect's Postaction runs. A non-empty wake list also declares an
// admission-domain group: the registered method and every listed method are
// merged into one domain, which is what makes the aspect's shared state
// safe without internal locking. If no admitted aspect of an invocation
// declares a non-empty wake list, the moderator conservatively broadcasts
// to every queue of the component (an empty list does not count — a
// passive aspect must not suppress the broadcast and strand another
// guard's waiters).
type Waker interface {
	Wakes() []string
}

// Func adapts plain functions into an Aspect. Zero-value hooks are treated
// as no-ops (Pre defaults to Resume).
type Func struct {
	AspectName string
	AspectKind Kind
	Pre        func(inv *Invocation) Verdict
	Post       func(inv *Invocation)
	CancelFn   func(inv *Invocation)
	AbandonFn  func(inv *Invocation)
	WakeList   []string
	// NonBlockingFlag opts the adapter into the NonBlocking contract.
	// Set it only when Pre never returns Block and no hook touches
	// cross-invocation guard state; see the NonBlocking interface.
	NonBlockingFlag bool
}

var (
	_ Aspect      = (*Func)(nil)
	_ Canceler    = (*Func)(nil)
	_ Waker       = (*Func)(nil)
	_ Abandoner   = (*Func)(nil)
	_ NonBlocking = (*Func)(nil)
)

// Name implements Aspect.
func (f *Func) Name() string {
	if f.AspectName == "" {
		return "anonymous"
	}
	return f.AspectName
}

// Kind implements Aspect.
func (f *Func) Kind() Kind { return f.AspectKind }

// Precondition implements Aspect.
func (f *Func) Precondition(inv *Invocation) Verdict {
	if f.Pre == nil {
		return Resume
	}
	return f.Pre(inv)
}

// Postaction implements Aspect.
func (f *Func) Postaction(inv *Invocation) {
	if f.Post != nil {
		f.Post(inv)
	}
}

// Cancel implements Canceler.
func (f *Func) Cancel(inv *Invocation) {
	if f.CancelFn != nil {
		f.CancelFn(inv)
	}
}

// Abandon implements Abandoner.
func (f *Func) Abandon(inv *Invocation) {
	if f.AbandonFn != nil {
		f.AbandonFn(inv)
	}
}

// Wakes implements Waker.
func (f *Func) Wakes() []string { return f.WakeList }

// NonBlocking implements NonBlocking; it reports the adapter's flag.
func (f *Func) NonBlocking() bool { return f.NonBlockingFlag }

// New returns a Func aspect with the given name, kind, and hooks. Either
// hook may be nil.
func New(name string, kind Kind, pre func(*Invocation) Verdict, post func(*Invocation)) *Func {
	return &Func{AspectName: name, AspectKind: kind, Pre: pre, Post: post}
}
