package aspect

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

var invocationSeq atomic.Uint64

// Invocation is the join-point record of one guarded method call. It is
// created by a component proxy, threaded through the pre-activation phase,
// the method body, and the post-activation phase, and carries the call's
// arguments, attributes, principal-style metadata, and outcome.
//
// An Invocation is owned by the calling goroutine; it is not safe for
// concurrent use. Aspects touch it only from moderator hooks, which the
// moderator serializes under the component's admission lock.
type Invocation struct {
	ctx       context.Context
	component string
	method    string
	args      []any

	// Priority orders blocked callers when the moderator's wait queues
	// use a priority wake policy. Higher values wake first.
	Priority int

	// RouteKey, when non-zero, is the stable identity the moderator hashes
	// (together with the method name) to decide whether this invocation is
	// routed to a staged canary plan epoch. Callers that want reproducible
	// canary routing across replays — the same ticket hitting the same
	// epoch every time — set it from a durable request identity (a ticket
	// id hash, a session id). When zero, the moderator falls back to the
	// process-unique invocation ID, which still distributes evenly but is
	// not stable across runs.
	RouteKey uint64

	attrs   map[any]any
	result  any
	err     error
	id      uint64
	created time.Time
}

// NewInvocation builds an invocation record for one call of method on the
// named component. A nil ctx defaults to context.Background().
func NewInvocation(ctx context.Context, component, method string, args []any) *Invocation {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Invocation{
		ctx:       ctx,
		component: component,
		method:    method,
		args:      args,
		id:        invocationSeq.Add(1),
		created:   time.Now(),
	}
}

// Context returns the caller's context. Moderators honor its cancellation
// while the invocation is blocked on a wait queue.
func (inv *Invocation) Context() context.Context { return inv.ctx }

// ID returns a process-unique sequence number for the invocation.
func (inv *Invocation) ID() uint64 { return inv.id }

// Component returns the name of the functional component being invoked.
func (inv *Invocation) Component() string { return inv.component }

// Method returns the participating method name.
func (inv *Invocation) Method() string { return inv.method }

// Created returns the time the invocation record was built.
func (inv *Invocation) Created() time.Time { return inv.created }

// Args returns the raw argument list. The slice is shared, not copied.
func (inv *Invocation) Args() []any { return inv.args }

// NumArgs returns the number of arguments.
func (inv *Invocation) NumArgs() int { return len(inv.args) }

// Arg returns argument i, or nil if out of range.
func (inv *Invocation) Arg(i int) any {
	if i < 0 || i >= len(inv.args) {
		return nil
	}
	return inv.args[i]
}

// ArgString coerces argument i to a string. It returns an error if the
// argument is missing or not a string.
func (inv *Invocation) ArgString(i int) (string, error) {
	v := inv.Arg(i)
	if v == nil {
		return "", fmt.Errorf("aspect: %s.%s arg %d: missing", inv.component, inv.method, i)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("aspect: %s.%s arg %d: want string, got %T", inv.component, inv.method, i, v)
	}
	return s, nil
}

// ArgInt coerces argument i to an int. JSON transports decode numbers as
// float64, so float64 values that are exact integers are accepted, as are
// the common integer widths and numeric strings.
func (inv *Invocation) ArgInt(i int) (int, error) {
	v := inv.Arg(i)
	switch n := v.(type) {
	case int:
		return n, nil
	case int32:
		return int(n), nil
	case int64:
		return int(n), nil
	case uint:
		return int(n), nil
	case float64:
		if n != float64(int(n)) {
			return 0, fmt.Errorf("aspect: %s.%s arg %d: non-integer number %v", inv.component, inv.method, i, n)
		}
		return int(n), nil
	case string:
		p, err := strconv.Atoi(n)
		if err != nil {
			return 0, fmt.Errorf("aspect: %s.%s arg %d: %w", inv.component, inv.method, i, err)
		}
		return p, nil
	case nil:
		return 0, fmt.Errorf("aspect: %s.%s arg %d: missing", inv.component, inv.method, i)
	default:
		return 0, fmt.Errorf("aspect: %s.%s arg %d: want int, got %T", inv.component, inv.method, i, v)
	}
}

// ArgFloat coerces argument i to a float64.
func (inv *Invocation) ArgFloat(i int) (float64, error) {
	v := inv.Arg(i)
	switch n := v.(type) {
	case float64:
		return n, nil
	case float32:
		return float64(n), nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	case string:
		p, err := strconv.ParseFloat(n, 64)
		if err != nil {
			return 0, fmt.Errorf("aspect: %s.%s arg %d: %w", inv.component, inv.method, i, err)
		}
		return p, nil
	case nil:
		return 0, fmt.Errorf("aspect: %s.%s arg %d: missing", inv.component, inv.method, i)
	default:
		return 0, fmt.Errorf("aspect: %s.%s arg %d: want float, got %T", inv.component, inv.method, i, v)
	}
}

// SetAttr attaches metadata to the invocation under the given key. Packages
// should use unexported key types, mirroring context.Context usage, so that
// independently developed aspects cannot collide.
func (inv *Invocation) SetAttr(key, value any) {
	if inv.attrs == nil {
		inv.attrs = make(map[any]any, 4)
	}
	inv.attrs[key] = value
}

// Attr returns the metadata stored under key, or nil.
func (inv *Invocation) Attr(key any) any {
	if inv.attrs == nil {
		return nil
	}
	return inv.attrs[key]
}

// DeleteAttr removes the metadata stored under key.
func (inv *Invocation) DeleteAttr(key any) {
	if inv.attrs != nil {
		delete(inv.attrs, key)
	}
}

// SetResult records the method body's outcome so post-activation aspects
// can observe it. The proxy calls this between the method body and
// post-activation.
func (inv *Invocation) SetResult(result any, err error) {
	inv.result = result
	inv.err = err
}

// Result returns the value the method body produced, if any.
func (inv *Invocation) Result() any { return inv.result }

// Err returns the error recorded on the invocation: the method body's error
// after execution, or an abort cause recorded by an aspect during
// pre-activation.
func (inv *Invocation) Err() error { return inv.err }

// SetErr records an error on the invocation. An aspect whose Precondition
// returns Abort should first call SetErr with the specific cause; the
// moderator surfaces it to the caller (falling back to ErrAborted).
func (inv *Invocation) SetErr(err error) { inv.err = err }

// String renders the invocation for diagnostics.
func (inv *Invocation) String() string {
	return fmt.Sprintf("%s.%s#%d", inv.component, inv.method, inv.id)
}
