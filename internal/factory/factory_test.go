package factory

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/aspect"
)

func ctorFor(name string) Constructor {
	return func(method string, target any) (aspect.Aspect, error) {
		return aspect.New(name+"/"+method, aspect.KindSynchronization, nil, nil), nil
	}
}

func TestZeroValueRegistryMisses(t *testing.T) {
	var r Registry
	_, err := r.Create("open", aspect.KindSynchronization, nil)
	if !errors.Is(err, ErrNoConstructor) {
		t.Fatalf("want ErrNoConstructor, got %v", err)
	}
}

func TestProvideValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Provide("", aspect.KindAudit, ctorFor("x")); err == nil {
		t.Error("empty method must error")
	}
	if err := r.Provide("m", "", ctorFor("x")); err == nil {
		t.Error("empty kind must error")
	}
	if err := r.Provide("m", aspect.KindAudit, nil); err == nil {
		t.Error("nil constructor must error")
	}
	if err := r.Provide("m", aspect.KindAudit, ctorFor("x")); err != nil {
		t.Fatalf("valid provide: %v", err)
	}
	if err := r.Provide("m", aspect.KindAudit, ctorFor("y")); err == nil {
		t.Error("duplicate provide must error")
	}
}

func TestExactMatchCreation(t *testing.T) {
	r := NewRegistry()
	if err := r.Provide("open", aspect.KindSynchronization, ctorFor("sync")); err != nil {
		t.Fatal(err)
	}
	a, err := r.Create("open", aspect.KindSynchronization, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "sync/open" {
		t.Errorf("created %q", a.Name())
	}
	if _, err := r.Create("assign", aspect.KindSynchronization, nil); !errors.Is(err, ErrNoConstructor) {
		t.Errorf("unprovided method: %v", err)
	}
	if _, err := r.Create("open", aspect.KindAudit, nil); !errors.Is(err, ErrNoConstructor) {
		t.Errorf("unprovided kind: %v", err)
	}
}

func TestWildcardAndPrecedence(t *testing.T) {
	r := NewRegistry()
	if err := r.Provide(Wildcard, aspect.KindAudit, ctorFor("generic")); err != nil {
		t.Fatal(err)
	}
	if err := r.Provide("open", aspect.KindAudit, ctorFor("special")); err != nil {
		t.Fatal(err)
	}
	a, err := r.Create("open", aspect.KindAudit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "special/open" {
		t.Errorf("exact must beat wildcard, got %q", a.Name())
	}
	a, err = r.Create("anything", aspect.KindAudit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "generic/anything" {
		t.Errorf("wildcard fallback, got %q", a.Name())
	}
}

func TestConstructorErrorsPropagate(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("no resources")
	if err := r.Provide("m", aspect.KindAudit, func(string, any) (aspect.Aspect, error) {
		return nil, boom
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("m", aspect.KindAudit, nil); !errors.Is(err, boom) {
		t.Errorf("want %v, got %v", boom, err)
	}
}

func TestNilAspectFromConstructorIsError(t *testing.T) {
	r := NewRegistry()
	if err := r.Provide("m", aspect.KindAudit, func(string, any) (aspect.Aspect, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("m", aspect.KindAudit, nil); err == nil {
		t.Error("nil aspect must be rejected")
	}
}

func TestTargetThreadedThrough(t *testing.T) {
	r := NewRegistry()
	type state struct{ n int }
	if err := r.Provide("m", aspect.KindAudit, func(method string, target any) (aspect.Aspect, error) {
		s, ok := target.(*state)
		if !ok {
			return nil, fmt.Errorf("bad target %T", target)
		}
		s.n++
		return aspect.New("a", aspect.KindAudit, nil, nil), nil
	}); err != nil {
		t.Fatal(err)
	}
	st := &state{}
	if _, err := r.Create("m", aspect.KindAudit, st); err != nil {
		t.Fatal(err)
	}
	if st.n != 1 {
		t.Errorf("target not passed: %d", st.n)
	}
}

func TestChainExtensionSemantics(t *testing.T) {
	// The paper's ExtendedAspectFactory: the extension knows authentication,
	// the base knows synchronization; the chain consults the extension first.
	base := NewRegistry()
	if err := base.Provide(Wildcard, aspect.KindSynchronization, ctorFor("base-sync")); err != nil {
		t.Fatal(err)
	}
	ext := NewRegistry()
	if err := ext.Provide(Wildcard, aspect.KindAuthentication, ctorFor("ext-auth")); err != nil {
		t.Fatal(err)
	}
	chain := Chain{ext, base}

	a, err := chain.Create("open", aspect.KindAuthentication, nil)
	if err != nil || a.Name() != "ext-auth/open" {
		t.Errorf("auth via extension: %v, %v", a, err)
	}
	a, err = chain.Create("open", aspect.KindSynchronization, nil)
	if err != nil || a.Name() != "base-sync/open" {
		t.Errorf("sync falls through to base: %v, %v", a, err)
	}
	if _, err := chain.Create("open", aspect.KindMetrics, nil); !errors.Is(err, ErrNoConstructor) {
		t.Errorf("unknown kind: %v", err)
	}
}

func TestChainShadowing(t *testing.T) {
	// A kind provided by both factories resolves to the first in the chain.
	first := NewRegistry()
	second := NewRegistry()
	if err := first.Provide(Wildcard, aspect.KindAudit, ctorFor("first")); err != nil {
		t.Fatal(err)
	}
	if err := second.Provide(Wildcard, aspect.KindAudit, ctorFor("second")); err != nil {
		t.Fatal(err)
	}
	a, err := Chain{first, second}.Create("m", aspect.KindAudit, nil)
	if err != nil || a.Name() != "first/m" {
		t.Errorf("shadowing: %v, %v", a, err)
	}
}

func TestChainStopsOnRealError(t *testing.T) {
	boom := errors.New("hard failure")
	failing := NewRegistry()
	if err := failing.Provide(Wildcard, aspect.KindAudit, func(string, any) (aspect.Aspect, error) {
		return nil, boom
	}); err != nil {
		t.Fatal(err)
	}
	fallback := NewRegistry()
	if err := fallback.Provide(Wildcard, aspect.KindAudit, ctorFor("fb")); err != nil {
		t.Fatal(err)
	}
	if _, err := (Chain{failing, fallback}).Create("m", aspect.KindAudit, nil); !errors.Is(err, boom) {
		t.Errorf("hard error must not fall through: %v", err)
	}
}

func TestChainSkipsNilAndEmpty(t *testing.T) {
	empty := Chain{}
	if _, err := empty.Create("m", aspect.KindAudit, nil); !errors.Is(err, ErrNoConstructor) {
		t.Errorf("empty chain: %v", err)
	}
	r := NewRegistry()
	if err := r.Provide(Wildcard, aspect.KindAudit, ctorFor("only")); err != nil {
		t.Fatal(err)
	}
	a, err := (Chain{nil, r}).Create("m", aspect.KindAudit, nil)
	if err != nil || a.Name() != "only/m" {
		t.Errorf("nil member must be skipped: %v, %v", a, err)
	}
}

func TestConcurrentProvideAndCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			method := fmt.Sprintf("m%d", w)
			if err := r.Provide(method, aspect.KindAudit, ctorFor("c")); err != nil {
				t.Errorf("provide: %v", err)
				return
			}
			for i := 0; i < 100; i++ {
				if _, err := r.Create(method, aspect.KindAudit, nil); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
