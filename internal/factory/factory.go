// Package factory implements the aspect factory of the framework: the
// Factory Method participant (the paper's Figure 4) that creates aspect
// objects on behalf of a component proxy during the initialization phase.
//
// The paper's AspectFactory is a class whose create(methodID, aspect,
// component) method switches on its arguments and instantiates the right
// concrete aspect (Figure 6); application-specific factories extend it
// (ExtendedAspectFactory, Figure 15). In Go the same roles are played by a
// Registry of constructors keyed by (method, kind) — with "*" wildcard
// methods — and by Chain, which composes factories so that an extension
// factory is consulted before (or after) the one it extends.
package factory

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/aspect"
)

// Wildcard is the method pattern matching every participating method.
const Wildcard = "*"

// ErrNoConstructor is returned when no registered constructor covers the
// requested (method, kind) coordinates.
var ErrNoConstructor = errors.New("factory: no constructor")

// Factory creates the aspect object guarding one (method, kind) cell of a
// component's aspect bank. The target is the functional component (or its
// shared guard state) the aspect needs access to — the paper passes the
// component proxy itself.
type Factory interface {
	Create(method string, kind aspect.Kind, target any) (aspect.Aspect, error)
}

// Constructor builds one aspect instance for a participating method.
type Constructor func(method string, target any) (aspect.Aspect, error)

type ctorKey struct {
	method string
	kind   aspect.Kind
}

// Registry is a Factory backed by a constructor table. The zero value is an
// empty registry ready for use.
type Registry struct {
	mu    sync.RWMutex
	ctors map[ctorKey]Constructor
}

var _ Factory = (*Registry)(nil)

// NewRegistry returns an empty registry. Equivalent to new(Registry).
func NewRegistry() *Registry { return new(Registry) }

// Provide registers a constructor for (method, kind). Use Wildcard as the
// method to cover every participating method of the component. Registering
// the same coordinates twice is an error: factories are assembled once,
// at initialization time.
func (r *Registry) Provide(method string, kind aspect.Kind, ctor Constructor) error {
	if method == "" {
		return fmt.Errorf("factory: provide %q/%q: empty method", method, kind)
	}
	if err := kind.Validate(); err != nil {
		return fmt.Errorf("factory: provide %q: %w", method, err)
	}
	if ctor == nil {
		return fmt.Errorf("factory: provide %s/%s: nil constructor", method, kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctors == nil {
		r.ctors = make(map[ctorKey]Constructor, 8)
	}
	k := ctorKey{method: method, kind: kind}
	if _, dup := r.ctors[k]; dup {
		return fmt.Errorf("factory: provide %s/%s: already provided", method, kind)
	}
	r.ctors[k] = ctor
	return nil
}

// Create implements Factory. An exact (method, kind) constructor wins over
// a (Wildcard, kind) one.
func (r *Registry) Create(method string, kind aspect.Kind, target any) (aspect.Aspect, error) {
	r.mu.RLock()
	ctor, ok := r.ctors[ctorKey{method: method, kind: kind}]
	if !ok {
		ctor, ok = r.ctors[ctorKey{method: Wildcard, kind: kind}]
	}
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("factory: create %s/%s: %w", method, kind, ErrNoConstructor)
	}
	a, err := ctor(method, target)
	if err != nil {
		return nil, fmt.Errorf("factory: create %s/%s: %w", method, kind, err)
	}
	if a == nil {
		return nil, fmt.Errorf("factory: create %s/%s: constructor returned nil aspect", method, kind)
	}
	return a, nil
}

// Chain composes factories: Create consults each in order and returns the
// first success. A factory that reports ErrNoConstructor falls through to
// the next; any other error stops the chain. This reproduces the paper's
// factory extension (ExtendedAspectFactory first, base AspectFactory as
// fallback) without inheritance.
type Chain []Factory

var _ Factory = (Chain)(nil)

// Create implements Factory.
func (c Chain) Create(method string, kind aspect.Kind, target any) (aspect.Aspect, error) {
	for _, f := range c {
		if f == nil {
			continue
		}
		a, err := f.Create(method, kind, target)
		if err == nil {
			return a, nil
		}
		if !errors.Is(err, ErrNoConstructor) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("factory: chain create %s/%s: %w", method, kind, ErrNoConstructor)
}
