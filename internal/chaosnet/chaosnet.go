// Package chaosnet is a deterministic fault-injection layer for net.Conn
// and net.Listener, built so every amrpc behaviour can be exercised under
// network pathology inside ordinary `go test` runs. An Injector wraps
// connections and, driven by a seeded PRNG and a configurable schedule,
// injects:
//
//   - latency and jitter (reads and writes stall for a bounded duration),
//   - partial writes (a prefix of the buffer is transmitted, then the
//     connection is reset),
//   - byte corruption (one byte of the payload is flipped in flight),
//   - silent drops (a write reports success but transmits nothing),
//   - mid-stream connection resets (the underlying conn is closed and the
//     operation fails).
//
// Determinism: every wrapped connection owns its own PRNG seeded from
// Config.Seed and the connection's wrap index, and fault decisions are a
// pure function of that PRNG and the connection's operation counter. Two
// runs that perform the same operations in the same order on connection k
// therefore observe the identical fault sequence — the property the
// package's trace tests pin down, and what makes chaos soak failures
// replayable from a seed.
package chaosnet

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// Fault names the injected fault classes as they appear in traces.
type Fault string

// The fault taxonomy.
const (
	FaultLatency Fault = "latency"
	FaultPartial Fault = "partial-write"
	FaultCorrupt Fault = "corrupt"
	FaultDrop    Fault = "drop"
	FaultReset   Fault = "reset"
)

// Config is the fault schedule of an Injector. Probabilities are evaluated
// per I/O operation, independently per fault class, in a fixed order, so a
// given (seed, schedule) pair replays identically.
type Config struct {
	// Seed drives every random decision. Two injectors with equal
	// configs inject identical fault sequences per connection.
	Seed int64

	// LatencyProb is the per-op probability of an injected stall of
	// LatencyMin..LatencyMax (both bounds clamped to >= 0).
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// PartialWriteProb is the per-write probability that only a prefix
	// of the buffer is transmitted before the connection is reset.
	PartialWriteProb float64

	// CorruptProb is the per-op probability that one byte of the payload
	// is flipped (applies to reads and writes).
	CorruptProb float64

	// DropProb is the per-write probability that the write reports full
	// success while transmitting nothing.
	DropProb float64

	// ResetProb is the per-op probability of a mid-stream connection
	// reset: the underlying conn is closed and the op returns an error.
	ResetProb float64

	// OpsBeforeFaults is a per-connection grace period: the first N
	// operations on each connection complete cleanly. It lets handshakes
	// (or a test's warm-up) through before the weather starts.
	OpsBeforeFaults int

	// ResetAfterOps, when > 0, deterministically resets each connection
	// at exactly its Nth operation, independent of ResetProb — the
	// scheduled component of the fault plan.
	ResetAfterOps int

	// Record retains the injected-fault trace for Trace/Counts.
	Record bool
}

// Event is one injected fault, as recorded in the trace.
type Event struct {
	Conn  int    // connection index, in wrap order
	Op    int    // operation counter within the connection (1-based)
	Dir   string // "read" or "write"
	Fault Fault
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("conn=%d op=%d %s %s", e.Conn, e.Op, e.Dir, e.Fault)
}

// Injector wraps connections and listeners with the configured fault plan.
// Safe for concurrent use.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	connSeq int
	trace   []Event
}

// New creates an injector for the given fault plan.
func New(cfg Config) *Injector {
	if cfg.LatencyMin < 0 {
		cfg.LatencyMin = 0
	}
	if cfg.LatencyMax < cfg.LatencyMin {
		cfg.LatencyMax = cfg.LatencyMin
	}
	return &Injector{cfg: cfg}
}

// WrapConn returns c with the injector's fault plan applied. Each wrapped
// connection gets its own deterministic PRNG stream.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	in.mu.Lock()
	idx := in.connSeq
	in.connSeq++
	in.mu.Unlock()
	// splitmix-style per-connection seed derivation keeps the streams of
	// different connections decorrelated while staying reproducible.
	seed := in.cfg.Seed + int64(idx)*int64(-7046029254386353131) // 0x9e3779b97f4a7c15 as int64
	return &conn{
		Conn: c,
		in:   in,
		idx:  idx,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// WrapListener returns a listener whose accepted connections are wrapped.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// DialFunc returns a dialer for addr whose connections are wrapped — the
// shape amrpc's client options expect.
func (in *Injector) DialFunc(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return in.WrapConn(c), nil
	}
}

// Trace returns a copy of the recorded fault events (Config.Record must be
// set). Events of one connection appear in operation order; events of
// different connections interleave in wall-clock order.
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.trace))
	copy(out, in.trace)
	return out
}

// TraceFor returns the recorded events of one connection, in op order —
// the per-connection view that is deterministic across runs.
func (in *Injector) TraceFor(connIdx int) []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Event
	for _, e := range in.trace {
		if e.Conn == connIdx {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// Counts aggregates the trace by fault class.
func (in *Injector) Counts() map[Fault]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Fault]int, 5)
	for _, e := range in.trace {
		out[e.Fault]++
	}
	return out
}

// Conns returns how many connections have been wrapped.
func (in *Injector) Conns() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.connSeq
}

func (in *Injector) record(e Event) {
	if !in.cfg.Record {
		return
	}
	in.mu.Lock()
	in.trace = append(in.trace, e)
	in.mu.Unlock()
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// plan is the set of fault decisions for one I/O operation. All PRNG draws
// happen in a fixed order regardless of which faults fire, so the stream
// stays aligned across runs.
type plan struct {
	reset   bool
	latency time.Duration
	corrupt bool
	// write-only faults
	drop    bool
	partial bool
}

type conn struct {
	net.Conn
	in  *Injector
	idx int

	mu  sync.Mutex
	rng *rand.Rand
	op  int
}

// decide draws this operation's fault plan from the connection's PRNG.
func (c *conn) decide(write bool) (int, plan) {
	cfg := &c.in.cfg
	c.mu.Lock()
	defer c.mu.Unlock()
	c.op++
	op := c.op
	var p plan
	if op <= cfg.OpsBeforeFaults {
		return op, p
	}
	roll := func(prob float64) bool {
		if prob <= 0 {
			return false
		}
		return c.rng.Float64() < prob
	}
	p.reset = roll(cfg.ResetProb)
	if cfg.ResetAfterOps > 0 && op == cfg.OpsBeforeFaults+cfg.ResetAfterOps {
		p.reset = true
	}
	if cfg.LatencyProb > 0 {
		hit := c.rng.Float64() < cfg.LatencyProb
		span := int64(cfg.LatencyMax - cfg.LatencyMin)
		d := cfg.LatencyMin
		if span > 0 {
			d += time.Duration(c.rng.Int63n(span + 1))
		}
		if hit {
			p.latency = d
		}
	}
	p.corrupt = roll(cfg.CorruptProb)
	if write {
		p.drop = roll(cfg.DropProb)
		p.partial = roll(cfg.PartialWriteProb)
	}
	return op, p
}

// corruptByte flips one byte of b in place, position drawn from the PRNG.
func (c *conn) corruptByte(b []byte) {
	if len(b) == 0 {
		return
	}
	c.mu.Lock()
	pos := c.rng.Intn(len(b))
	bit := byte(1) << c.rng.Intn(8)
	c.mu.Unlock()
	b[pos] ^= bit
}

func (c *conn) Read(b []byte) (int, error) {
	op, p := c.decide(false)
	if p.latency > 0 {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "read", Fault: FaultLatency})
		time.Sleep(p.latency)
	}
	if p.reset {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "read", Fault: FaultReset})
		_ = c.Conn.Close()
		return 0, fmt.Errorf("chaosnet: injected reset (conn %d op %d)", c.idx, op)
	}
	n, err := c.Conn.Read(b)
	if n > 0 && p.corrupt {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "read", Fault: FaultCorrupt})
		c.corruptByte(b[:n])
	}
	return n, err
}

func (c *conn) Write(b []byte) (int, error) {
	op, p := c.decide(true)
	if p.latency > 0 {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "write", Fault: FaultLatency})
		time.Sleep(p.latency)
	}
	if p.reset {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "write", Fault: FaultReset})
		_ = c.Conn.Close()
		return 0, fmt.Errorf("chaosnet: injected reset (conn %d op %d)", c.idx, op)
	}
	if p.drop {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "write", Fault: FaultDrop})
		return len(b), nil // lie: report success, transmit nothing
	}
	if p.partial && len(b) > 1 {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "write", Fault: FaultPartial})
		n, _ := c.Conn.Write(b[:len(b)/2])
		_ = c.Conn.Close()
		return n, fmt.Errorf("chaosnet: injected partial write (conn %d op %d)", c.idx, op)
	}
	if p.corrupt {
		c.in.record(Event{Conn: c.idx, Op: op, Dir: "write", Fault: FaultCorrupt})
		cp := make([]byte, len(b))
		copy(cp, b)
		c.corruptByte(cp)
		return c.Conn.Write(cp)
	}
	return c.Conn.Write(b)
}
