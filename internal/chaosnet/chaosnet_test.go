package chaosnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// runScript drives one wrapped connection through a fixed operation
// sequence (writes drained by a peer goroutine, then reads of echoed data)
// and returns the injector's per-connection trace.
func runScript(t *testing.T, cfg Config, writes int) []Event {
	t.Helper()
	cfg.Record = true
	in := New(cfg)
	a, b := net.Pipe()
	defer func() { _ = a.Close(); _ = b.Close() }()
	wrapped := in.WrapConn(a)

	// Peer: drain whatever arrives so writes never block.
	go func() { _, _ = io.Copy(io.Discard, b) }()

	payload := bytes.Repeat([]byte("x"), 64)
	for k := 0; k < writes; k++ {
		_, _ = wrapped.Write(payload)
	}
	return in.TraceFor(0)
}

func TestSameSeedSameSchedule_IdenticalTrace(t *testing.T) {
	cfg := Config{
		Seed:             42,
		LatencyProb:      0.2,
		LatencyMin:       10 * time.Microsecond,
		LatencyMax:       50 * time.Microsecond,
		PartialWriteProb: 0.05,
		CorruptProb:      0.15,
		DropProb:         0.1,
		ResetProb:        0.02,
		OpsBeforeFaults:  3,
	}
	t1 := runScript(t, cfg, 200)
	t2 := runScript(t, cfg, 200)
	if len(t1) == 0 {
		t.Fatal("fault plan injected nothing in 200 ops; schedule too quiet to test")
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	cfg := Config{
		Seed:        1,
		CorruptProb: 0.3,
		DropProb:    0.3,
	}
	t1 := runScript(t, cfg, 200)
	cfg.Seed = 2
	t2 := runScript(t, cfg, 200)
	if len(t1) == len(t2) {
		same := true
		for i := range t1 {
			if t1[i] != t2[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGracePeriodIsClean(t *testing.T) {
	cfg := Config{
		Seed:            7,
		CorruptProb:     1.0, // every op would corrupt...
		OpsBeforeFaults: 10,  // ...but the first 10 are clean
	}
	trace := runScript(t, cfg, 10)
	if len(trace) != 0 {
		t.Fatalf("faults during grace period: %v", trace)
	}
}

func TestScheduledReset(t *testing.T) {
	cfg := Config{
		Seed:            99,
		OpsBeforeFaults: 2,
		ResetAfterOps:   5, // reset at exactly op 7
	}
	trace := runScript(t, cfg, 20)
	if len(trace) == 0 {
		t.Fatal("scheduled reset never fired")
	}
	first := trace[0]
	if first.Fault != FaultReset || first.Op != 7 {
		t.Fatalf("first fault = %v, want reset at op 7", first)
	}
}

func TestWrapListenerWrapsAcceptedConns(t *testing.T) {
	in := New(Config{Seed: 5, ResetAfterOps: 1, Record: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wln := in.WrapListener(ln)
	defer func() { _ = wln.Close() }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := wln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = c.Close() }()
		buf := make([]byte, 16)
		_, _ = c.Read(buf) // op 1: injected reset
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("hello"))
	<-done
	_ = c.Close()
	if in.Conns() != 1 {
		t.Fatalf("wrapped conns = %d, want 1", in.Conns())
	}
	if got := in.Counts()[FaultReset]; got != 1 {
		t.Fatalf("reset count = %d, want 1 (trace %v)", got, in.Trace())
	}
}
