// Package sched provides the scheduling aspects of the framework: admission
// controllers that decide *when* and *in what order* invocations proceed —
// concurrency ceilings, token-bucket rate limiting, per-client fair-share
// quotas, and priority classification. Scheduling is one of the interaction
// properties the paper names alongside synchronization (Section 1).
//
// Like all guard aspects, these run under the moderator's admission lock
// and need no internal locking, with the exception of the rate limiter's
// optional refill pump, which runs on its own goroutine and communicates
// through the moderator's Kick.
package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/aspect"
)

// ErrShed is recorded on invocations rejected by a limiter in shed mode.
var ErrShed = errors.New("sched: request shed")

// Ceiling limits the number of concurrently admitted invocations across a
// set of methods — a scheduling-kind semaphore.
type Ceiling struct {
	inUse   int
	limit   int
	methods []string
}

// NewCeiling creates a concurrency ceiling guard.
func NewCeiling(limit int, methods ...string) (*Ceiling, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("sched: ceiling limit %d must be positive", limit)
	}
	return &Ceiling{limit: limit, methods: methods}, nil
}

// Aspect returns the guard enforcing the ceiling.
func (c *Ceiling) Aspect(name string) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindScheduling,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			if c.inUse >= c.limit {
				return aspect.Block
			}
			c.inUse++
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { c.inUse-- },
		CancelFn: func(*aspect.Invocation) { c.inUse-- },
		WakeList: c.methods,
	}
}

// InUse returns the number of admitted invocations (diagnostics; call only
// under the admission lock).
func (c *Ceiling) InUse() int { return c.inUse }

// LimiterMode selects what a RateLimiter does when no token is available.
type LimiterMode int

const (
	// Shed aborts the invocation with ErrShed.
	Shed LimiterMode = iota + 1
	// Wait blocks the caller until tokens refill. Blocked callers are
	// only re-evaluated on a wake-up, so pair Wait mode with Pump (or
	// call the moderator's Kick from your own timer).
	Wait
)

// RateLimiter is a token-bucket admission aspect: invocations consume one
// token each; tokens refill at Rate per second up to Burst.
type RateLimiter struct {
	rate   float64
	burst  float64
	mode   LimiterMode
	now    func() time.Time
	tokens float64
	last   time.Time

	methods []string
}

// RateLimiterConfig configures NewRateLimiter.
type RateLimiterConfig struct {
	// Rate is the sustained admission rate in tokens per second.
	Rate float64
	// Burst is the bucket capacity (defaults to Rate if zero).
	Burst float64
	// Mode selects shedding or waiting (default Shed).
	Mode LimiterMode
	// Now overrides the clock (tests).
	Now func() time.Time
	// Methods is the wake list for Wait mode.
	Methods []string
}

// NewRateLimiter creates a token-bucket limiter. The bucket starts full.
func NewRateLimiter(cfg RateLimiterConfig) (*RateLimiter, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("sched: rate %v must be positive", cfg.Rate)
	}
	burst := cfg.Burst
	if burst == 0 {
		burst = cfg.Rate
	}
	if burst <= 0 {
		return nil, fmt.Errorf("sched: burst %v must be positive", burst)
	}
	mode := cfg.Mode
	if mode == 0 {
		mode = Shed
	}
	if mode != Shed && mode != Wait {
		return nil, fmt.Errorf("sched: invalid limiter mode %d", mode)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	rl := &RateLimiter{
		rate:    cfg.Rate,
		burst:   burst,
		mode:    mode,
		now:     now,
		tokens:  burst,
		methods: cfg.Methods,
	}
	rl.last = now()
	return rl, nil
}

// refill advances the bucket to the current time.
func (rl *RateLimiter) refill() {
	t := rl.now()
	elapsed := t.Sub(rl.last).Seconds()
	if elapsed <= 0 {
		return
	}
	rl.last = t
	rl.tokens += elapsed * rl.rate
	if rl.tokens > rl.burst {
		rl.tokens = rl.burst
	}
}

// Aspect returns the admission aspect of the limiter.
func (rl *RateLimiter) Aspect(name string) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindScheduling,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			rl.refill()
			if rl.tokens >= 1 {
				rl.tokens--
				return aspect.Resume
			}
			if rl.mode == Wait {
				return aspect.Block
			}
			inv.SetErr(fmt.Errorf("sched: %s: %w", inv.Method(), ErrShed))
			return aspect.Abort
		},
		WakeList: rl.methods,
	}
}

// Tokens returns the current token count after a refill (diagnostics; call
// only under the admission lock).
func (rl *RateLimiter) Tokens() float64 {
	rl.refill()
	return rl.tokens
}

// Pump periodically kicks the given wake function (typically the
// moderator's Kick bound to the limited methods) so that Wait-mode callers
// re-evaluate as tokens refill. It blocks until ctx is cancelled; run it on
// a dedicated goroutine owned by the caller.
func (rl *RateLimiter) Pump(ctx context.Context, interval time.Duration, kick func()) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			kick()
		}
	}
}

// FairShare caps the number of outstanding invocations per client so that
// no client monopolizes a component. The client identity is derived from
// the invocation by the classifier function (for example the authenticated
// principal's name).
type FairShare struct {
	perClient   int
	classify    func(inv *aspect.Invocation) string
	outstanding map[string]int
	methods     []string
}

// clientKey carries the classified identity from precondition to
// postaction, so completion is attributed even if classification would
// change.
type clientKey struct{}

// NewFairShare creates a fair-share guard admitting at most perClient
// concurrent invocations for any one client.
func NewFairShare(perClient int, classify func(inv *aspect.Invocation) string, methods ...string) (*FairShare, error) {
	if perClient <= 0 {
		return nil, fmt.Errorf("sched: per-client limit %d must be positive", perClient)
	}
	if classify == nil {
		return nil, errors.New("sched: nil classifier")
	}
	return &FairShare{
		perClient:   perClient,
		classify:    classify,
		outstanding: make(map[string]int, 16),
		methods:     methods,
	}, nil
}

// Aspect returns the guard enforcing the fair share.
func (fs *FairShare) Aspect(name string) aspect.Aspect {
	release := func(inv *aspect.Invocation) {
		client, _ := inv.Attr(clientKey{}).(string)
		inv.DeleteAttr(clientKey{})
		if n := fs.outstanding[client]; n <= 1 {
			delete(fs.outstanding, client)
		} else {
			fs.outstanding[client] = n - 1
		}
	}
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindScheduling,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			client := fs.classify(inv)
			if fs.outstanding[client] >= fs.perClient {
				return aspect.Block
			}
			fs.outstanding[client]++
			inv.SetAttr(clientKey{}, client)
			return aspect.Resume
		},
		Post:     release,
		CancelFn: release,
		WakeList: fs.methods,
	}
}

// Outstanding returns a client's in-flight count (diagnostics; call only
// under the admission lock).
func (fs *FairShare) Outstanding(client string) int { return fs.outstanding[client] }

// Classifier returns a priority-classification aspect: it sets the
// invocation's wait-queue priority from the supplied function before any
// later aspect can block the call, so priority wake policies see it. It
// never blocks or aborts.
func Classifier(name string, prioritize func(inv *aspect.Invocation) int) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindScheduling,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			inv.Priority = prioritize(inv)
			return aspect.Resume
		},
	}
}
