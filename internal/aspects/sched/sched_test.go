package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/waitq"
)

func inv(method string) *aspect.Invocation {
	return aspect.NewInvocation(context.Background(), "comp", method, nil)
}

func TestCeilingValidation(t *testing.T) {
	if _, err := NewCeiling(0); err == nil {
		t.Error("limit 0 must error")
	}
	if _, err := NewCeiling(-3); err == nil {
		t.Error("negative limit must error")
	}
}

func TestCeilingAdmission(t *testing.T) {
	c, err := NewCeiling(2, "m")
	if err != nil {
		t.Fatal(err)
	}
	a := c.Aspect("ceiling")
	i1, i2 := inv("m"), inv("m")
	if a.Precondition(i1) != aspect.Resume || a.Precondition(i2) != aspect.Resume {
		t.Fatal("two admissions must pass")
	}
	if a.Precondition(inv("m")) != aspect.Block {
		t.Fatal("third must block")
	}
	if c.InUse() != 2 {
		t.Fatalf("inUse = %d", c.InUse())
	}
	a.Postaction(i1)
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("released capacity must admit")
	}
	// Cancel also releases.
	a.(aspect.Canceler).Cancel(i2)
	if c.InUse() != 1 {
		t.Fatalf("inUse after cancel = %d", c.InUse())
	}
}

func TestRateLimiterValidation(t *testing.T) {
	if _, err := NewRateLimiter(RateLimiterConfig{Rate: 0}); err == nil {
		t.Error("rate 0 must error")
	}
	if _, err := NewRateLimiter(RateLimiterConfig{Rate: 1, Burst: -1}); err == nil {
		t.Error("negative burst must error")
	}
	if _, err := NewRateLimiter(RateLimiterConfig{Rate: 1, Mode: LimiterMode(9)}); err == nil {
		t.Error("invalid mode must error")
	}
}

func TestRateLimiterShedMode(t *testing.T) {
	now := time.Unix(1000, 0)
	rl, err := NewRateLimiter(RateLimiterConfig{
		Rate:  1, // 1 token/sec
		Burst: 2,
		Mode:  Shed,
		Now:   func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	a := rl.Aspect("limiter")
	// Bucket starts full at burst=2.
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("first token")
	}
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("second token")
	}
	i := inv("m")
	if a.Precondition(i) != aspect.Abort {
		t.Fatal("empty bucket must shed")
	}
	if !errors.Is(i.Err(), ErrShed) {
		t.Fatalf("err = %v", i.Err())
	}
	// Advance 1.5s: 1.5 tokens refill.
	now = now.Add(1500 * time.Millisecond)
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("refilled token must admit")
	}
	if a.Precondition(inv("m")) != aspect.Abort {
		t.Fatal("only one token should have been usable")
	}
	// Refill is capped at burst.
	now = now.Add(time.Hour)
	if got := rl.Tokens(); got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

func TestRateLimiterWaitModeBlocks(t *testing.T) {
	now := time.Unix(1000, 0)
	rl, err := NewRateLimiter(RateLimiterConfig{
		Rate:    1,
		Burst:   1,
		Mode:    Wait,
		Now:     func() time.Time { return now },
		Methods: []string{"m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := rl.Aspect("limiter")
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("first token")
	}
	if a.Precondition(inv("m")) != aspect.Block {
		t.Fatal("empty bucket must block in wait mode")
	}
	if w := a.(aspect.Waker).Wakes(); len(w) != 1 || w[0] != "m" {
		t.Errorf("wakes = %v", w)
	}
}

func TestRateLimiterWaitModeWithPump(t *testing.T) {
	// Real-clock integration: 1 burst, high refill rate; a blocked second
	// call must be admitted once the pump kicks the moderator.
	rl, err := NewRateLimiter(RateLimiterConfig{
		Rate:    200, // fast refill keeps the test quick
		Burst:   1,
		Mode:    Wait,
		Methods: []string{"m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("comp")
	if err := mod.Register("m", aspect.KindScheduling, rl.Aspect("limiter")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		rl.Pump(ctx, time.Millisecond, func() { mod.Kick("m") })
	}()

	for k := 0; k < 3; k++ {
		i := inv("m")
		adm, err := mod.Preactivation(i)
		if err != nil {
			t.Fatalf("call %d: %v", k, err)
		}
		mod.Postactivation(i, adm)
	}
	cancel()
	pump.Wait()
}

func TestFairShareValidation(t *testing.T) {
	classify := func(*aspect.Invocation) string { return "c" }
	if _, err := NewFairShare(0, classify); err == nil {
		t.Error("limit 0 must error")
	}
	if _, err := NewFairShare(1, nil); err == nil {
		t.Error("nil classifier must error")
	}
}

func TestFairSharePerClientLimit(t *testing.T) {
	fs, err := NewFairShare(1, func(i *aspect.Invocation) string {
		s, _ := i.ArgString(0)
		return s
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	a := fs.Aspect("fair")
	alice1 := aspect.NewInvocation(context.Background(), "comp", "m", []any{"alice"})
	alice2 := aspect.NewInvocation(context.Background(), "comp", "m", []any{"alice"})
	bob1 := aspect.NewInvocation(context.Background(), "comp", "m", []any{"bob"})

	if a.Precondition(alice1) != aspect.Resume {
		t.Fatal("alice first must admit")
	}
	if a.Precondition(alice2) != aspect.Block {
		t.Fatal("alice second must block")
	}
	if a.Precondition(bob1) != aspect.Resume {
		t.Fatal("bob must not be impacted by alice's quota")
	}
	if fs.Outstanding("alice") != 1 || fs.Outstanding("bob") != 1 {
		t.Fatalf("outstanding = %d/%d", fs.Outstanding("alice"), fs.Outstanding("bob"))
	}
	a.Postaction(alice1)
	if fs.Outstanding("alice") != 0 {
		t.Fatal("completion must release the quota")
	}
	if a.Precondition(alice2) != aspect.Resume {
		t.Fatal("alice must be admitted after release")
	}
	// Cancel releases too.
	a.(aspect.Canceler).Cancel(alice2)
	if fs.Outstanding("alice") != 0 {
		t.Fatal("cancel must release the quota")
	}
}

func TestClassifierSetsPriority(t *testing.T) {
	a := Classifier("prio", func(i *aspect.Invocation) int {
		n, _ := i.ArgInt(0)
		return n * 10
	})
	i := aspect.NewInvocation(context.Background(), "comp", "m", []any{3})
	if a.Precondition(i) != aspect.Resume {
		t.Fatal("classifier must always resume")
	}
	if i.Priority != 30 {
		t.Errorf("priority = %d, want 30", i.Priority)
	}
}

func TestPriorityAdmissionUnderLoad(t *testing.T) {
	// E6 semantics: a ceiling of 1 with priority policy must admit a
	// high-priority waiter before low-priority ones.
	c, err := NewCeiling(1, "m")
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("comp",
		moderator.WithWakePolicy(waitq.Priority),
		moderator.WithWakeMode(moderator.WakeSingle))
	if err := mod.Register("m", aspect.KindScheduling, c.Aspect("ceiling")); err != nil {
		t.Fatal(err)
	}
	holder := inv("m")
	holderAdm, err := mod.Preactivation(holder)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan int, 2)
	var wg sync.WaitGroup
	for _, p := range []int{1, 9} {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			i := inv("m")
			i.Priority = p
			adm, err := mod.Preactivation(i)
			if err != nil {
				t.Errorf("prio %d: %v", p, err)
				return
			}
			results <- p
			mod.Postactivation(i, adm)
		}(p)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mod.Waiting("m") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never parked")
		}
		time.Sleep(time.Millisecond)
	}
	mod.Postactivation(holder, holderAdm)
	first := <-results
	second := <-results
	wg.Wait()
	if first != 9 || second != 1 {
		t.Errorf("admission order = %d,%d; want 9,1", first, second)
	}
}
