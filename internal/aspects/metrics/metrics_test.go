package metrics

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
)

func inv(method string) *aspect.Invocation {
	return aspect.NewInvocation(context.Background(), "comp", method, nil)
}

// stepClock returns a clock advancing by step on every call.
func stepClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

func TestAspectMeasuresLatency(t *testing.T) {
	r := NewRecorder(WithClock(stepClock(10 * time.Millisecond)))
	a := r.Aspect("metrics")
	if a.Kind() != aspect.KindMetrics {
		t.Errorf("kind = %q", a.Kind())
	}
	i := inv("open")
	if v := a.Precondition(i); v != aspect.Resume {
		t.Fatalf("metrics must never gate: %v", v)
	}
	i.SetResult(nil, nil)
	a.Postaction(i)

	snap := r.Snapshot()
	s, ok := snap["comp.open"]
	if !ok {
		t.Fatalf("no stats for comp.open: %v", r.Keys())
	}
	if s.Count != 1 || s.Errors != 0 {
		t.Errorf("count/errors = %d/%d", s.Count, s.Errors)
	}
	// Two clock ticks apart → 10ms.
	if s.Mean() != 10*time.Millisecond {
		t.Errorf("mean = %v, want 10ms", s.Mean())
	}
	if s.Min != 10*time.Millisecond || s.Max != 10*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestErrorsCounted(t *testing.T) {
	r := NewRecorder(WithClock(stepClock(time.Millisecond)))
	a := r.Aspect("metrics")
	for k := 0; k < 3; k++ {
		i := inv("open")
		a.Precondition(i)
		var err error
		if k == 1 {
			err = errors.New("boom")
		}
		i.SetResult(nil, err)
		a.Postaction(i)
	}
	s := r.Snapshot()["comp.open"]
	if s.Count != 3 || s.Errors != 1 {
		t.Errorf("count/errors = %d/%d, want 3/1", s.Count, s.Errors)
	}
}

func TestCancelDiscardsMeasurement(t *testing.T) {
	r := NewRecorder()
	a := r.Aspect("metrics")
	i := inv("open")
	a.Precondition(i)
	a.(aspect.Canceler).Cancel(i)
	if len(r.Snapshot()) != 0 {
		t.Error("cancelled admission must not record a sample")
	}
	// A postaction without a matching pre start attr must be a no-op.
	a.Postaction(inv("open"))
	if len(r.Snapshot()) != 0 {
		t.Error("orphan postaction must not record")
	}
}

func TestQuantileAndMean(t *testing.T) {
	var s MethodStats
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty stats must be zero")
	}
	// Feed 100 samples: 1us..100us via observe.
	r := NewRecorder()
	for k := 1; k <= 100; k++ {
		r.observe("comp.m", time.Duration(k)*time.Microsecond, false)
	}
	st := r.Snapshot()["comp.m"]
	if st.Count != 100 {
		t.Fatalf("count = %d", st.Count)
	}
	p50 := st.Quantile(0.5)
	if p50 < 32*time.Microsecond || p50 > 128*time.Microsecond {
		t.Errorf("p50 = %v outside coarse bucket range", p50)
	}
	p100 := st.Quantile(1)
	if p100 != st.Max {
		t.Errorf("p100 = %v, want max %v", p100, st.Max)
	}
	if q := st.Quantile(2); q != st.Max {
		t.Errorf("q>1 clamps to max, got %v", q)
	}
	if q := st.Quantile(0); q != 0 {
		t.Errorf("q=0 must be 0, got %v", q)
	}
	wantMean := 50500 * time.Nanosecond // mean of 1..100 microseconds
	if st.Mean() != wantMean {
		t.Errorf("mean = %v, want %v", st.Mean(), wantMean)
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{1000 * time.Microsecond, 10},
		{time.Hour, bucketCount - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestKeysSortedAndReset(t *testing.T) {
	r := NewRecorder()
	r.observe("b.m", time.Microsecond, false)
	r.observe("a.m", time.Microsecond, false)
	if got := r.Keys(); !reflect.DeepEqual(got, []string{"a.m", "b.m"}) {
		t.Errorf("keys = %v", got)
	}
	r.Reset()
	if len(r.Keys()) != 0 {
		t.Error("reset must clear")
	}
}

func TestReportRenders(t *testing.T) {
	r := NewRecorder()
	r.observe("comp.open", 5*time.Microsecond, false)
	r.observe("comp.open", 7*time.Microsecond, true)
	rep := r.Report()
	if rep == "" {
		t.Fatal("empty report")
	}
	for _, want := range []string{"comp.open", "count", "p99"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	r := NewRecorder()
	r.observe("comp.m", -time.Second, false)
	s := r.Snapshot()["comp.m"]
	if s.Min != 0 || s.Max != 0 {
		t.Errorf("negative duration not clamped: %+v", s)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRecorder()
	a := r.Aspect("metrics")
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				i := inv("open")
				a.Precondition(i)
				i.SetResult(nil, nil)
				a.Postaction(i)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()["comp.open"]
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
}
