// Package metrics provides the throughput/latency measurement aspect of
// the framework. Throughput is among the interaction requirements the
// paper lists for open concurrent systems (Section 2); composing it as an
// aspect means a component gains instrumentation with zero functional-code
// change.
//
// A Recorder may be shared across components and is internally locked.
// Latency is recorded from admission (pre-activation) to completion
// (post-activation), i.e. the method body plus any inner-layer aspect
// work, and aggregated into exponential histogram buckets.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/aspect"
)

// bucketCount is the number of exponential latency buckets: bucket i holds
// durations < 1us * 2^i, the last bucket is unbounded.
const bucketCount = 32

// MethodStats aggregates one method's measurements.
type MethodStats struct {
	Count   uint64
	Errors  uint64
	Min     time.Duration
	Max     time.Duration
	Sum     time.Duration
	buckets [bucketCount]uint64
}

// Mean returns the mean latency, or 0 with no samples.
func (s *MethodStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(uint64(s.Sum) / s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// from the histogram buckets, or 0 with no samples.
func (s *MethodStats) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		cum += s.buckets[i]
		if cum >= rank {
			upper := time.Duration(1<<uint(i)) * time.Microsecond
			if upper > s.Max && s.Max > 0 {
				return s.Max
			}
			return upper
		}
	}
	return s.Max
}

func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	for i := 0; i < bucketCount-1; i++ {
		if us < 1<<uint(i) {
			return i
		}
	}
	return bucketCount - 1
}

// Recorder collects per-method statistics.
type Recorder struct {
	mu    sync.Mutex
	now   func() time.Time
	stats map[string]*MethodStats
}

// RecorderOption configures NewRecorder.
type RecorderOption func(*Recorder)

// WithClock overrides the clock (tests).
func WithClock(now func() time.Time) RecorderOption {
	return func(r *Recorder) { r.now = now }
}

// NewRecorder creates an empty recorder.
func NewRecorder(opts ...RecorderOption) *Recorder {
	r := &Recorder{
		now:   time.Now,
		stats: make(map[string]*MethodStats, 8),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

type startKey struct{}

// Aspect returns the measurement aspect. Register it innermost so the
// interval excludes outer concerns' blocking time, or outermost to include
// it.
func (r *Recorder) Aspect(name string) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindMetrics,
		// The recorder carries its own mutex (it spans components), so
		// the aspect needs no admission lock and never blocks.
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			inv.SetAttr(startKey{}, r.now())
			return aspect.Resume
		},
		Post: func(inv *aspect.Invocation) {
			started, ok := inv.Attr(startKey{}).(time.Time)
			inv.DeleteAttr(startKey{})
			if !ok {
				return
			}
			r.observe(inv.Component()+"."+inv.Method(), r.now().Sub(started), inv.Err() != nil)
		},
		CancelFn: func(inv *aspect.Invocation) { inv.DeleteAttr(startKey{}) },
	}
}

func (r *Recorder) observe(key string, d time.Duration, failed bool) {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stats[key]
	if !ok {
		s = &MethodStats{Min: d}
		r.stats[key] = s
	}
	s.Count++
	if failed {
		s.Errors++
	}
	if d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Sum += d
	s.buckets[bucketFor(d)]++
}

// Snapshot returns a copy of all per-method statistics, keyed by
// "component.method".
func (r *Recorder) Snapshot() map[string]MethodStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]MethodStats, len(r.stats))
	for k, s := range r.stats {
		out[k] = *s
	}
	return out
}

// Keys returns the sorted measurement keys.
func (r *Recorder) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.stats))
	for k := range r.stats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset clears all statistics.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = make(map[string]*MethodStats, 8)
}

// Report renders a plain-text table of the collected statistics.
func (r *Recorder) Report() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("%-32s %10s %8s %12s %12s %12s %12s\n",
		"method", "count", "errors", "mean", "p50", "p99", "max")
	for _, k := range keys {
		s := snap[k]
		out += fmt.Sprintf("%-32s %10d %8d %12v %12v %12v %12v\n",
			k, s.Count, s.Errors, s.Mean(), s.Quantile(0.50), s.Quantile(0.99), s.Max)
	}
	return out
}
