// Package fault provides the fault-tolerance concerns of the framework —
// one of the interaction properties the paper names in Section 1. Two
// styles coexist:
//
//   - Guard aspects, evaluated by the moderator like any other concern:
//     CircuitBreaker (shed calls to a failing component) and Bulkhead
//     (bound in-flight work).
//   - Invoker middleware, wrapped around a proxy or RPC stub: Retry and
//     Timeout. Retrying must re-run the method body, which is outside a
//     guard's power — the moderator model brackets a single execution — so
//     these compose at the invoker boundary instead.
package fault

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/aspect"
	"repro/internal/proxy"
)

// ErrCircuitOpen is recorded on invocations shed by an open circuit breaker.
var ErrCircuitOpen = errors.New("fault: circuit open")

// ErrBulkheadFull is recorded on invocations shed by a full bulkhead.
var ErrBulkheadFull = errors.New("fault: bulkhead full")

// breakerState is the classic three-state circuit machine.
type breakerState int

const (
	stateClosed breakerState = iota + 1
	stateOpen
	stateHalfOpen
)

// CircuitBreaker sheds invocations of a component that keeps failing:
// after Threshold consecutive failures the circuit opens and calls abort
// immediately; after Cooldown a single probe is admitted (half-open); a
// successful probe closes the circuit, a failed one re-opens it.
type CircuitBreaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state         breakerState
	failures      int
	openedAt      time.Time
	probeInFlight bool
}

// CircuitBreakerConfig configures NewCircuitBreaker.
type CircuitBreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit.
	Threshold int
	// Cooldown is how long the circuit stays open before a probe.
	Cooldown time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// NewCircuitBreaker creates a closed circuit breaker.
func NewCircuitBreaker(cfg CircuitBreakerConfig) (*CircuitBreaker, error) {
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("fault: breaker threshold %d must be positive", cfg.Threshold)
	}
	if cfg.Cooldown <= 0 {
		return nil, fmt.Errorf("fault: breaker cooldown %v must be positive", cfg.Cooldown)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &CircuitBreaker{
		threshold: cfg.Threshold,
		cooldown:  cfg.Cooldown,
		now:       now,
		state:     stateClosed,
	}, nil
}

// State returns "closed", "open", or "half-open" (diagnostics; call only
// under the admission lock).
func (cb *CircuitBreaker) State() string {
	switch cb.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Aspect returns the breaker's guard aspect. Register it for every method
// whose failures should trip (and be shed by) the breaker.
func (cb *CircuitBreaker) Aspect(name string) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindFaultTolerance,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			switch cb.state {
			case stateOpen:
				if cb.now().Sub(cb.openedAt) < cb.cooldown {
					inv.SetErr(fmt.Errorf("fault: %s.%s: %w",
						inv.Component(), inv.Method(), ErrCircuitOpen))
					return aspect.Abort
				}
				cb.state = stateHalfOpen
				cb.probeInFlight = false
				fallthrough
			case stateHalfOpen:
				if cb.probeInFlight {
					inv.SetErr(fmt.Errorf("fault: %s.%s: probe in flight: %w",
						inv.Component(), inv.Method(), ErrCircuitOpen))
					return aspect.Abort
				}
				cb.probeInFlight = true
				return aspect.Resume
			default:
				return aspect.Resume
			}
		},
		Post: func(inv *aspect.Invocation) {
			failed := inv.Err() != nil
			switch cb.state {
			case stateHalfOpen:
				cb.probeInFlight = false
				if failed {
					cb.trip()
				} else {
					cb.state = stateClosed
					cb.failures = 0
				}
			case stateClosed:
				if failed {
					cb.failures++
					if cb.failures >= cb.threshold {
						cb.trip()
					}
				} else {
					cb.failures = 0
				}
			}
		},
		CancelFn: func(*aspect.Invocation) {
			if cb.state == stateHalfOpen {
				cb.probeInFlight = false
			}
		},
	}
}

func (cb *CircuitBreaker) trip() {
	cb.state = stateOpen
	cb.failures = 0
	cb.openedAt = cb.now()
}

// Bulkhead bounds in-flight invocations, shedding the excess with
// ErrBulkheadFull — load isolation that fails fast instead of queueing.
type Bulkhead struct {
	limit int
	inUse int
}

// NewBulkhead creates a bulkhead admitting at most limit concurrent calls.
func NewBulkhead(limit int) (*Bulkhead, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("fault: bulkhead limit %d must be positive", limit)
	}
	return &Bulkhead{limit: limit}, nil
}

// Aspect returns the bulkhead's guard aspect.
func (b *Bulkhead) Aspect(name string) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindFaultTolerance,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if b.inUse >= b.limit {
				inv.SetErr(fmt.Errorf("fault: %s.%s: %w",
					inv.Component(), inv.Method(), ErrBulkheadFull))
				return aspect.Abort
			}
			b.inUse++
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { b.inUse-- },
		CancelFn: func(*aspect.Invocation) { b.inUse-- },
	}
}

// InUse returns the number of admitted invocations (diagnostics; call only
// under the admission lock).
func (b *Bulkhead) InUse() int { return b.inUse }

// RetryPolicy configures the Retry middleware.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (>= 1).
	MaxAttempts int
	// ShouldRetry decides whether an error is transient. A nil function
	// retries every error.
	ShouldRetry func(error) bool
	// Backoff returns the sleep before attempt n (1-based, first retry is
	// n=1). A nil function means no backoff.
	Backoff func(attempt int) time.Duration
	// Sleep overrides time-based sleeping (tests). It must honor ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Retry wraps an invoker so that transient failures are re-invoked, up to
// the policy's attempt budget. Each attempt is a full guarded invocation —
// pre-activation, body, post-activation — so aspect state stays balanced.
func Retry(inner proxy.Invoker, policy RetryPolicy) (proxy.Invoker, error) {
	if inner == nil {
		return nil, errors.New("fault: retry: nil invoker")
	}
	if policy.MaxAttempts < 1 {
		return nil, fmt.Errorf("fault: retry: max attempts %d must be >= 1", policy.MaxAttempts)
	}
	shouldRetry := policy.ShouldRetry
	if shouldRetry == nil {
		shouldRetry = func(error) bool { return true }
	}
	sleep := policy.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			if d <= 0 {
				return ctx.Err()
			}
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
				return nil
			}
		}
	}
	return invokerFunc(func(ctx context.Context, method string, args ...any) (any, error) {
		var lastErr error
		for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
			if attempt > 0 {
				var d time.Duration
				if policy.Backoff != nil {
					d = policy.Backoff(attempt)
				}
				if err := sleep(ctx, d); err != nil {
					return nil, fmt.Errorf("fault: retry %s: %w", method, err)
				}
			}
			result, err := inner.Invoke(ctx, method, args...)
			if err == nil {
				return result, nil
			}
			lastErr = err
			if !shouldRetry(err) || ctx.Err() != nil {
				break
			}
		}
		return nil, lastErr
	}), nil
}

// Timeout wraps an invoker so every invocation carries a deadline. Blocked
// pre-activations observe the deadline through context cancellation.
func Timeout(inner proxy.Invoker, d time.Duration) (proxy.Invoker, error) {
	if inner == nil {
		return nil, errors.New("fault: timeout: nil invoker")
	}
	if d <= 0 {
		return nil, fmt.Errorf("fault: timeout %v must be positive", d)
	}
	return invokerFunc(func(ctx context.Context, method string, args ...any) (any, error) {
		tctx, cancel := context.WithTimeout(ctx, d)
		defer cancel()
		return inner.Invoke(tctx, method, args...)
	}), nil
}

// invokerFunc adapts a function to proxy.Invoker.
type invokerFunc func(ctx context.Context, method string, args ...any) (any, error)

func (f invokerFunc) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	return f(ctx, method, args...)
}
