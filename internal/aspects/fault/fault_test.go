package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

func inv(method string) *aspect.Invocation {
	return aspect.NewInvocation(context.Background(), "comp", method, nil)
}

// fakeClock is a manually advanced clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestCircuitBreakerValidation(t *testing.T) {
	if _, err := NewCircuitBreaker(CircuitBreakerConfig{Threshold: 0, Cooldown: time.Second}); err == nil {
		t.Error("threshold 0 must error")
	}
	if _, err := NewCircuitBreaker(CircuitBreakerConfig{Threshold: 1, Cooldown: 0}); err == nil {
		t.Error("cooldown 0 must error")
	}
}

// run performs one admission/completion round against the breaker aspect,
// with the given body error, and returns the pre-activation verdict.
func run(a aspect.Aspect, bodyErr error) aspect.Verdict {
	i := inv("m")
	v := a.Precondition(i)
	if v == aspect.Resume {
		i.SetResult(nil, bodyErr)
		a.Postaction(i)
	}
	return v
}

func TestCircuitBreakerTripAndRecovery(t *testing.T) {
	clk := newFakeClock()
	cb, err := NewCircuitBreaker(CircuitBreakerConfig{
		Threshold: 3,
		Cooldown:  10 * time.Second,
		Now:       clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := cb.Aspect("breaker")
	boom := errors.New("component down")

	// Two failures: still closed (threshold 3).
	run(a, boom)
	run(a, boom)
	if cb.State() != "closed" {
		t.Fatalf("state after 2 failures = %s", cb.State())
	}
	// A success resets the consecutive count.
	run(a, nil)
	run(a, boom)
	run(a, boom)
	if cb.State() != "closed" {
		t.Fatalf("state after reset+2 = %s", cb.State())
	}
	// Third consecutive failure trips it.
	run(a, boom)
	if cb.State() != "open" {
		t.Fatalf("state after 3 consecutive = %s", cb.State())
	}

	// While open, calls shed with ErrCircuitOpen.
	i := inv("m")
	if v := a.Precondition(i); v != aspect.Abort {
		t.Fatalf("open breaker verdict = %v", v)
	}
	if !errors.Is(i.Err(), ErrCircuitOpen) {
		t.Errorf("err = %v", i.Err())
	}

	// After cooldown: half-open admits one probe; a failure re-opens.
	clk.advance(11 * time.Second)
	if v := run(a, boom); v != aspect.Resume {
		t.Fatalf("probe verdict = %v", v)
	}
	if cb.State() != "open" {
		t.Fatalf("state after failed probe = %s", cb.State())
	}

	// After another cooldown: successful probe closes.
	clk.advance(11 * time.Second)
	if v := run(a, nil); v != aspect.Resume {
		t.Fatalf("probe verdict = %v", v)
	}
	if cb.State() != "closed" {
		t.Fatalf("state after good probe = %s", cb.State())
	}
	if v := run(a, nil); v != aspect.Resume {
		t.Fatalf("closed breaker verdict = %v", v)
	}
}

func TestCircuitBreakerSingleProbe(t *testing.T) {
	clk := newFakeClock()
	cb, err := NewCircuitBreaker(CircuitBreakerConfig{
		Threshold: 1, Cooldown: time.Second, Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := cb.Aspect("breaker")
	run(a, errors.New("down")) // trips immediately
	clk.advance(2 * time.Second)

	// First probe admitted but not yet completed.
	p := inv("m")
	if a.Precondition(p) != aspect.Resume {
		t.Fatal("probe must be admitted")
	}
	// Second concurrent call while probe in flight: shed.
	if a.Precondition(inv("m")) != aspect.Abort {
		t.Fatal("second probe must be shed")
	}
	// Cancel releases the probe slot.
	a.(aspect.Canceler).Cancel(p)
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("probe slot must be reusable after cancel")
	}
}

func TestBulkheadValidation(t *testing.T) {
	if _, err := NewBulkhead(0); err == nil {
		t.Error("limit 0 must error")
	}
}

func TestBulkheadShedsExcess(t *testing.T) {
	b, err := NewBulkhead(2)
	if err != nil {
		t.Fatal(err)
	}
	a := b.Aspect("bulkhead")
	i1, i2 := inv("m"), inv("m")
	if a.Precondition(i1) != aspect.Resume || a.Precondition(i2) != aspect.Resume {
		t.Fatal("under limit must admit")
	}
	i3 := inv("m")
	if a.Precondition(i3) != aspect.Abort {
		t.Fatal("over limit must shed")
	}
	if !errors.Is(i3.Err(), ErrBulkheadFull) {
		t.Errorf("err = %v", i3.Err())
	}
	a.Postaction(i1)
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("freed slot must admit")
	}
	if b.InUse() != 2 {
		t.Fatalf("inUse = %d", b.InUse())
	}
}

// flakyComponent fails the first n invocations of each method.
type flakyComponent struct {
	failures int
	calls    int
}

func (f *flakyComponent) body(*aspect.Invocation) (any, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, errors.New("transient")
	}
	return "ok", nil
}

func newGuardedFlaky(t *testing.T, failures int) (*proxy.Proxy, *flakyComponent) {
	t.Helper()
	comp := &flakyComponent{failures: failures}
	p := proxy.New(moderator.New("flaky"))
	if err := p.Bind("m", comp.body); err != nil {
		t.Fatal(err)
	}
	return p, comp
}

func TestRetryValidation(t *testing.T) {
	p, _ := newGuardedFlaky(t, 0)
	if _, err := Retry(nil, RetryPolicy{MaxAttempts: 1}); err == nil {
		t.Error("nil invoker must error")
	}
	if _, err := Retry(p, RetryPolicy{MaxAttempts: 0}); err == nil {
		t.Error("0 attempts must error")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p, comp := newGuardedFlaky(t, 2)
	var backoffs []int
	r, err := Retry(p, RetryPolicy{
		MaxAttempts: 5,
		Backoff:     func(n int) time.Duration { backoffs = append(backoffs, n); return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Invoke(context.Background(), "m")
	if err != nil || got != "ok" {
		t.Fatalf("retry result = %v, %v", got, err)
	}
	if comp.calls != 3 {
		t.Errorf("calls = %d, want 3", comp.calls)
	}
	if len(backoffs) != 2 || backoffs[0] != 1 || backoffs[1] != 2 {
		t.Errorf("backoff attempts = %v", backoffs)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p, comp := newGuardedFlaky(t, 100)
	r, err := Retry(p, RetryPolicy{MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(context.Background(), "m"); err == nil {
		t.Fatal("exhausted retry must fail")
	}
	if comp.calls != 3 {
		t.Errorf("calls = %d, want 3", comp.calls)
	}
}

func TestRetryHonorsShouldRetry(t *testing.T) {
	p, comp := newGuardedFlaky(t, 100)
	r, err := Retry(p, RetryPolicy{
		MaxAttempts: 5,
		ShouldRetry: func(error) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(context.Background(), "m"); err == nil {
		t.Fatal("must fail")
	}
	if comp.calls != 1 {
		t.Errorf("non-retryable error must not retry: calls = %d", comp.calls)
	}
}

func TestRetryHonorsContextDuringBackoff(t *testing.T) {
	p, _ := newGuardedFlaky(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	r, err := Retry(p, RetryPolicy{
		MaxAttempts: 10,
		Backoff:     func(int) time.Duration { return time.Hour },
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // simulate cancellation arriving mid-backoff
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(ctx, "m"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestTimeoutValidation(t *testing.T) {
	p, _ := newGuardedFlaky(t, 0)
	if _, err := Timeout(nil, time.Second); err == nil {
		t.Error("nil invoker must error")
	}
	if _, err := Timeout(p, 0); err == nil {
		t.Error("0 duration must error")
	}
}

func TestTimeoutUnblocksParkedCaller(t *testing.T) {
	// A method guarded by an always-block aspect; the timeout middleware
	// must convert the park into a deadline error.
	mod := moderator.New("stuck")
	gate := aspect.New("gate", aspect.KindSynchronization,
		func(*aspect.Invocation) aspect.Verdict { return aspect.Block }, nil)
	if err := mod.Register("m", aspect.KindSynchronization, gate); err != nil {
		t.Fatal(err)
	}
	p := proxy.New(mod)
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	tp, err := Timeout(p, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tp.Invoke(context.Background(), "m")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestBreakerUnderProxyIntegration(t *testing.T) {
	// Breaker + flaky component wired through the full proxy stack: the
	// breaker must shed while open and recover after cooldown.
	clk := newFakeClock()
	cb, err := NewCircuitBreaker(CircuitBreakerConfig{
		Threshold: 2, Cooldown: time.Second, Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp := &flakyComponent{failures: 2}
	p := proxy.New(moderator.New("svc"))
	if err := p.Bind("m", comp.body); err != nil {
		t.Fatal(err)
	}
	if err := p.Moderator().Register("m", aspect.KindFaultTolerance, cb.Aspect("breaker")); err != nil {
		t.Fatal(err)
	}

	// Two failures trip the breaker.
	for k := 0; k < 2; k++ {
		if _, err := p.Invoke(context.Background(), "m"); err == nil {
			t.Fatal("flaky call should fail")
		}
	}
	// Open: shed without reaching the component.
	callsBefore := comp.calls
	if _, err := p.Invoke(context.Background(), "m"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if comp.calls != callsBefore {
		t.Error("shed call must not reach the component")
	}
	// Recover.
	clk.advance(2 * time.Second)
	got, err := p.Invoke(context.Background(), "m")
	if err != nil || got != "ok" {
		t.Fatalf("probe = %v, %v", got, err)
	}
}
