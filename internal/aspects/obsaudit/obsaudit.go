// Package obsaudit is the observability subsystem consumed as a
// first-class aspect: an audit aspect that records admission events for
// its participating method through the normal aspect-bank path, feeding
// the same obs.Collector (and the same event vocabulary) as the
// moderator's built-in trace hooks.
//
// This is the framework dogfooding itself — the paper lists auditing as a
// cross-cutting concern the Aspect Moderator should compose, and
// "Pluggable AOP" argues an observability mechanism should ride the
// existing aspect machinery rather than bypass it. Where the moderator
// hooks see the admission machinery (verdicts, parks, domains), this
// aspect sees the join point: its precondition and postaction bracket the
// method body, so the span it records covers the body plus every aspect
// layered inside it.
//
// The aspect is deliberately passive: the precondition always resumes,
// the wake list is empty (a passive Waker must not suppress the
// moderator's conservative broadcast), and events are emitted with Domain
// 0 — the domain reserved for events recorded outside any admission
// domain.
package obsaudit

import (
	"sync/atomic"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/obs"
)

// Kind is the concern dimension the audit aspect occupies in the bank.
// It is distinct from aspect.KindAudit so an application can layer both a
// domain audit trail and the observability audit on one method.
const Kind = aspect.Kind("observability")

// attrKey keys the span start time on the invocation's attribute bag.
type attrKey struct{ name string }

// Auditor builds audit aspects bound to one collector.
type Auditor struct {
	c    *obs.Collector
	tick atomic.Uint64
}

// New returns an Auditor recording into c.
func New(c *obs.Collector) *Auditor { return &Auditor{c: c} }

// sampled applies the collector's sampling rate with the auditor's own
// tick, mirroring the moderator's per-domain gate.
func (a *Auditor) sampled() bool {
	every := uint64(a.c.SampleEvery())
	if every <= 1 {
		return true
	}
	return a.tick.Add(1)%every == 0
}

// Aspect returns the audit aspect to register for one participating
// method. It resumes every invocation; on sampled invocations it emits an
// aspect-pre event and stamps the span start, and the postaction emits an
// aspect-post event carrying the pre-to-post span latency (method body
// plus every aspect layered inside this one). Cancel — an inner aspect
// aborted or blocked after this aspect admitted — emits aspect-cancel.
func (a *Auditor) Aspect(name string) aspect.Aspect {
	key := attrKey{name: name}
	return &aspect.Func{
		AspectName: name,
		AspectKind: Kind,
		// Passive observer: never blocks, and the collector carries its
		// own synchronization — eligible for the lock-free fast path.
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if a.sampled() {
				inv.SetAttr(key, time.Now())
				a.c.Trace(moderator.TraceEvent{
					Op: moderator.TraceAspectPre, Component: inv.Component(),
					Method: inv.Method(), Aspect: name, Kind: Kind,
					Invocation: inv.ID(),
				})
			}
			return aspect.Resume
		},
		Post: func(inv *aspect.Invocation) {
			start, ok := inv.Attr(key).(time.Time)
			if !ok {
				return // not a sampled invocation
			}
			inv.DeleteAttr(key)
			ev := moderator.TraceEvent{
				Op: moderator.TraceAspectPost, Component: inv.Component(),
				Method: inv.Method(), Aspect: name, Kind: Kind,
				Invocation: inv.ID(), Nanos: time.Since(start).Nanoseconds(),
			}
			if err := inv.Err(); err != nil {
				ev.Err = err.Error()
			}
			a.c.Trace(ev)
		},
		CancelFn: func(inv *aspect.Invocation) {
			start, ok := inv.Attr(key).(time.Time)
			if !ok {
				return
			}
			inv.DeleteAttr(key)
			a.c.Trace(moderator.TraceEvent{
				Op: moderator.TraceAspectCancel, Component: inv.Component(),
				Method: inv.Method(), Aspect: name, Kind: Kind,
				Invocation: inv.ID(), Nanos: time.Since(start).Nanoseconds(),
			})
		},
	}
}
