package obsaudit

import (
	"testing"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/obs"
)

func TestAuditAspectRecordsSpans(t *testing.T) {
	mod := moderator.New("svc")
	c := obs.NewCollector(obs.WithSampleEvery(1))
	aud := New(c)
	if err := mod.Register("work", Kind, aud.Aspect("obs-work")); err != nil {
		t.Fatal(err)
	}
	// On deny the audit admits first, then the authorization aspect
	// aborts — exercising the cancel path.
	if err := mod.Register("deny", Kind, aud.Aspect("obs-deny")); err != nil {
		t.Fatal(err)
	}
	abort := &aspect.Func{AspectName: "deny", AspectKind: aspect.KindAuthorization,
		Pre: func(*aspect.Invocation) aspect.Verdict { return aspect.Abort }}
	if err := mod.Register("deny", aspect.KindAuthorization, abort); err != nil {
		t.Fatal(err)
	}

	inv := aspect.NewInvocation(nil, "svc", "work", nil)
	adm, err := mod.Preactivation(inv)
	if err != nil {
		t.Fatal(err)
	}
	mod.Postactivation(inv, adm)

	inv = aspect.NewInvocation(nil, "svc", "deny", nil)
	if _, err := mod.Preactivation(inv); err == nil {
		t.Fatal("deny admission unexpectedly succeeded")
	}

	reg := c.Registry()
	count := func(op string) uint64 {
		return reg.CounterOf("am_aspect_events_total", "",
			obs.L("component", "svc"), obs.L("op", op)).Value()
	}
	if got := count("aspect-pre"); got != 2 {
		t.Fatalf("aspect-pre = %d, want 2", got)
	}
	if got := count("aspect-post"); got != 1 {
		t.Fatalf("aspect-post = %d, want 1", got)
	}
	if got := count("aspect-cancel"); got != 1 {
		t.Fatalf("aspect-cancel = %d, want 1", got)
	}
	span := reg.HistogramOf("am_span_ns", "",
		obs.L("component", "svc"), obs.L("method", "work")).Snapshot()
	if span.Count != 1 {
		t.Fatalf("span count = %d, want 1", span.Count)
	}

	// Aspect-path events land in the reserved domain 0.
	var sawPre, sawCancel bool
	for _, e := range c.Events(0) {
		switch e.Op {
		case "aspect-pre", "aspect-post":
			if e.Domain != 0 {
				t.Fatalf("aspect event in domain %d, want 0", e.Domain)
			}
			sawPre = true
		case "aspect-cancel":
			sawCancel = true
		}
	}
	if !sawPre || !sawCancel {
		t.Fatal("missing aspect-path events in the ring")
	}
}

// TestAuditAspectIsPassive pins the Waker contract: the audit aspect must
// not declare wake targets — an empty list keeps the moderator's
// conservative broadcast intact for other guards' waiters (the PR 2
// wake-targeting rule).
func TestAuditAspectIsPassive(t *testing.T) {
	aud := New(obs.NewCollector())
	a := aud.Aspect("obs-x")
	w, ok := a.(aspect.Waker)
	if !ok {
		t.Fatal("audit aspect does not implement Waker")
	}
	if got := w.Wakes(); len(got) != 0 {
		t.Fatalf("audit aspect wake list = %v, want empty", got)
	}
}

// TestAuditAspectSampling checks the auditor honors the collector's rate.
func TestAuditAspectSampling(t *testing.T) {
	c := obs.NewCollector(obs.WithSampleEvery(1 << 20))
	mod := moderator.New("svc")
	if err := mod.Register("work", Kind, New(c).Aspect("obs-work")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		inv := aspect.NewInvocation(nil, "svc", "work", nil)
		adm, err := mod.Preactivation(inv)
		if err != nil {
			t.Fatal(err)
		}
		mod.Postactivation(inv, adm)
	}
	got := c.Registry().CounterOf("am_aspect_events_total", "",
		obs.L("component", "svc"), obs.L("op", "aspect-pre")).Value()
	if got != 0 {
		t.Fatalf("aspect-pre = %d, want 0 at 1-in-2^20 sampling", got)
	}
}
