package coord

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

func TestNewBarrierValidation(t *testing.T) {
	if _, err := NewBarrier(1); err == nil {
		t.Error("parties 1 must error")
	}
	if _, err := NewBarrier(0); err == nil {
		t.Error("parties 0 must error")
	}
}

func TestNewRendezvousValidation(t *testing.T) {
	if _, err := NewRendezvous("", "b"); err == nil {
		t.Error("empty left must error")
	}
	if _, err := NewRendezvous("a", ""); err == nil {
		t.Error("empty right must error")
	}
	if _, err := NewRendezvous("a", "a"); err == nil {
		t.Error("identical methods must error")
	}
}

// runBarrierParty performs one guarded call through the moderator and
// reports completion on the returned channel.
func party(mod *moderator.Moderator, method string) <-chan error {
	done := make(chan error, 1)
	go func() {
		i := aspect.NewInvocation(context.Background(), "comp", method, nil)
		adm, err := mod.Preactivation(i)
		if err == nil {
			mod.Postactivation(i, adm)
		}
		done <- err
	}()
	return done
}

func waitWaiting(t *testing.T, mod *moderator.Moderator, method string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for mod.Waiting(method) != n {
		if time.Now().After(deadline) {
			t.Fatalf("waiting(%s) never reached %d (at %d)", method, n, mod.Waiting(method))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBarrierReleasesCohorts(t *testing.T) {
	const parties = 3
	b, err := NewBarrier(parties, "m")
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("comp")
	if err := mod.Register("m", aspect.KindSynchronization, b.Aspect("barrier")); err != nil {
		t.Fatal(err)
	}

	for cohort := 0; cohort < 3; cohort++ {
		// First N-1 parties park.
		var dones []<-chan error
		for k := 0; k < parties-1; k++ {
			dones = append(dones, party(mod, "m"))
			waitWaiting(t, mod, "m", k+1)
		}
		select {
		case err := <-dones[0]:
			t.Fatalf("party passed an incomplete barrier: %v", err)
		default:
		}
		// The Nth party completes the cohort; everyone passes.
		dones = append(dones, party(mod, "m"))
		for i, d := range dones {
			select {
			case err := <-d:
				if err != nil {
					t.Fatalf("cohort %d party %d: %v", cohort, i, err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("cohort %d party %d never released", cohort, i)
			}
		}
		if got := b.Generation(); got != uint64(cohort+1) {
			t.Fatalf("generation = %d, want %d", got, cohort+1)
		}
	}
}

func TestBarrierAcrossMethods(t *testing.T) {
	// Parties arrive via two different participating methods.
	b, err := NewBarrier(2, "put", "get")
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("comp")
	a := b.Aspect("barrier")
	if err := mod.Register("put", aspect.KindSynchronization, a); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("get", aspect.KindSynchronization, a); err != nil {
		t.Fatal(err)
	}
	d1 := party(mod, "put")
	waitWaiting(t, mod, "put", 1)
	d2 := party(mod, "get")
	for i, d := range []<-chan error{d1, d2} {
		select {
		case err := <-d:
			if err != nil {
				t.Fatalf("party %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("party %d never released", i)
		}
	}
}

func TestBarrierAbandonRetractsArrival(t *testing.T) {
	b, err := NewBarrier(2, "m")
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("comp")
	if err := mod.Register("m", aspect.KindSynchronization, b.Aspect("barrier")); err != nil {
		t.Fatal(err)
	}

	// Party 1 arrives and then abandons.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, perr := mod.Preactivation(aspect.NewInvocation(ctx, "comp", "m", nil))
		done <- perr
	}()
	waitWaiting(t, mod, "m", 1)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled party must fail")
	}

	// The arrival must have been retracted: two fresh parties are needed.
	d1 := party(mod, "m")
	waitWaiting(t, mod, "m", 1)
	select {
	case err := <-d1:
		t.Fatalf("single party passed after abandoned arrival: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	d2 := party(mod, "m")
	for i, d := range []<-chan error{d1, d2} {
		select {
		case err := <-d:
			if err != nil {
				t.Fatalf("party %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("party %d never released", i)
		}
	}
}

func TestBarrierManyCohortsConcurrent(t *testing.T) {
	const parties, cohorts = 4, 10
	b, err := NewBarrier(parties, "m")
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("comp")
	if err := mod.Register("m", aspect.KindSynchronization, b.Aspect("barrier")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, parties*cohorts)
	for k := 0; k < parties*cohorts; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := aspect.NewInvocation(context.Background(), "comp", "m", nil)
			adm, err := mod.Preactivation(i)
			if err == nil {
				mod.Postactivation(i, adm)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("party: %v", err)
		}
	}
	if got := b.Generation(); got != cohorts {
		t.Errorf("generations = %d, want %d", got, cohorts)
	}
	if b.Arrived() != 0 {
		t.Errorf("residual arrivals = %d", b.Arrived())
	}
}

func newRendezvousModerator(t *testing.T) (*moderator.Moderator, *Rendezvous) {
	t.Helper()
	r, err := NewRendezvous("send", "recv")
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("comp")
	if err := mod.Register("send", aspect.KindSynchronization, r.LeftAspect("rdv-send")); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("recv", aspect.KindSynchronization, r.RightAspect("rdv-recv")); err != nil {
		t.Fatal(err)
	}
	return mod, r
}

func TestRendezvousPairsCallers(t *testing.T) {
	mod, _ := newRendezvousModerator(t)
	// A sender parks alone.
	d1 := party(mod, "send")
	waitWaiting(t, mod, "send", 1)
	select {
	case err := <-d1:
		t.Fatalf("sender proceeded without a receiver: %v", err)
	default:
	}
	// A receiver arrives: both proceed.
	d2 := party(mod, "recv")
	for i, d := range []<-chan error{d1, d2} {
		select {
		case err := <-d:
			if err != nil {
				t.Fatalf("side %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("side %d never proceeded", i)
		}
	}
}

func TestRendezvousManyPairsConcurrent(t *testing.T) {
	mod, r := newRendezvousModerator(t)
	const pairs = 32
	var wg sync.WaitGroup
	errs := make(chan error, 2*pairs)
	run := func(method string) {
		defer wg.Done()
		i := aspect.NewInvocation(context.Background(), "comp", method, nil)
		adm, err := mod.Preactivation(i)
		if err == nil {
			mod.Postactivation(i, adm)
		}
		errs <- err
	}
	for k := 0; k < pairs; k++ {
		wg.Add(2)
		go run("send")
		go run("recv")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("caller: %v", err)
		}
	}
	l, rr := r.Waiting()
	if l != 0 || rr != 0 {
		t.Errorf("residual waiters: %d/%d", l, rr)
	}
}

func TestRendezvousAbandonReleasesSlot(t *testing.T) {
	mod, r := newRendezvousModerator(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, perr := mod.Preactivation(aspect.NewInvocation(ctx, "comp", "send", nil))
		done <- perr
	}()
	waitWaiting(t, mod, "send", 1)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled sender must fail")
	}
	l, _ := r.Waiting()
	if l != 0 {
		t.Fatalf("abandoned sender still counted: %d", l)
	}
	// A fresh receiver must park (nobody is actually waiting), then a
	// fresh sender pairs with it.
	d1 := party(mod, "recv")
	waitWaiting(t, mod, "recv", 1)
	select {
	case err := <-d1:
		t.Fatalf("receiver paired with a ghost: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	d2 := party(mod, "send")
	for i, d := range []<-chan error{d1, d2} {
		select {
		case err := <-d:
			if err != nil {
				t.Fatalf("side %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("side %d never proceeded", i)
		}
	}
}
