// Package coord provides coordination aspects — the multi-party
// interaction property the paper lists alongside synchronization and
// scheduling (Section 2). Where syncguard aspects condition one caller's
// admission on component state, coordination aspects condition admission
// on *other callers*: a Barrier releases parties in cohorts of N, a
// Rendezvous pairs callers of two methods.
//
// Both are ordinary guard aspects: no coordination code enters the
// functional component. They exercise the framework's Abandoner hook —
// a blocked party that cancels retracts its arrival so the cohort count
// stays truthful.
package coord

import (
	"fmt"

	"repro/internal/aspect"
)

// generationKey remembers, per invocation, which barrier generation the
// caller arrived in.
type generationKey struct{}

// Barrier admits callers in cohorts: each caller blocks until Parties
// callers have arrived, then the whole cohort proceeds together (a new
// generation begins for subsequent arrivals).
type Barrier struct {
	parties    int
	arrived    int
	generation uint64
	methods    []string
}

// NewBarrier creates a barrier for cohorts of the given size. The methods
// list is the wake list (the participating methods the barrier guards).
func NewBarrier(parties int, methods ...string) (*Barrier, error) {
	if parties <= 1 {
		return nil, fmt.Errorf("coord: barrier parties %d must be at least 2", parties)
	}
	return &Barrier{parties: parties, methods: methods}, nil
}

// Aspect returns the barrier's guard aspect. Register it for every
// participating method; callers of any of them count toward the cohort.
func (b *Barrier) Aspect(name string) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			// A caller whose generation has passed was released by the
			// cohort's completion.
			if gen, ok := inv.Attr(generationKey{}).(uint64); ok {
				if gen < b.generation {
					inv.DeleteAttr(generationKey{})
					return aspect.Resume
				}
				// Same generation: still waiting for the cohort to fill.
				return aspect.Block
			}
			// First arrival of this invocation.
			b.arrived++
			if b.arrived == b.parties {
				// Cohort complete: release everyone and proceed.
				b.arrived = 0
				b.generation++
				return aspect.Resume
			}
			inv.SetAttr(generationKey{}, b.generation)
			return aspect.Block
		},
		AbandonFn: func(inv *aspect.Invocation) {
			// A parked party gave up: retract its arrival unless its
			// cohort already completed (in which case its slot was
			// consumed by the release and the generation moved on).
			if gen, ok := inv.Attr(generationKey{}).(uint64); ok {
				inv.DeleteAttr(generationKey{})
				if gen == b.generation {
					b.arrived--
				}
			}
		},
		WakeList: b.methods,
	}
}

// Arrived returns the current cohort's arrival count (diagnostics; call
// only under the admission lock).
func (b *Barrier) Arrived() int { return b.arrived }

// Generation returns the number of completed cohorts.
func (b *Barrier) Generation() uint64 { return b.generation }

// Rendezvous pairs callers of two methods: a caller of either side blocks
// until a partner from the other side arrives; then both proceed. The
// classic synchronous channel protocol, composed as an aspect pair.
type Rendezvous struct {
	left, right   string
	leftWaiting   int
	rightWaiting  int
	leftReleases  int // partners that arrived and released a waiting left
	rightReleases int
}

// NewRendezvous creates a rendezvous between callers of leftMethod and
// rightMethod.
func NewRendezvous(leftMethod, rightMethod string) (*Rendezvous, error) {
	if leftMethod == "" || rightMethod == "" || leftMethod == rightMethod {
		return nil, fmt.Errorf("coord: rendezvous methods %q/%q must be distinct and non-empty",
			leftMethod, rightMethod)
	}
	return &Rendezvous{left: leftMethod, right: rightMethod}, nil
}

type sideKey struct{}

// LeftAspect returns the guard for the left method.
func (r *Rendezvous) LeftAspect(name string) aspect.Aspect {
	return r.sideAspect(name, &r.leftWaiting, &r.leftReleases, &r.rightWaiting, &r.rightReleases)
}

// RightAspect returns the guard for the right method.
func (r *Rendezvous) RightAspect(name string) aspect.Aspect {
	return r.sideAspect(name, &r.rightWaiting, &r.rightReleases, &r.leftWaiting, &r.leftReleases)
}

// sideAspect builds one side's guard: mine/myReleases are this side's
// counters, theirs/theirReleases the partner side's.
func (r *Rendezvous) sideAspect(name string, mine, myReleases, theirs, theirReleases *int) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if _, waiting := inv.Attr(sideKey{}).(bool); waiting {
				// Parked earlier; a release token from the partner side
				// lets exactly one waiter through.
				if *myReleases > 0 {
					*myReleases--
					inv.DeleteAttr(sideKey{})
					return aspect.Resume
				}
				return aspect.Block
			}
			if *theirs > 0 {
				// A partner is parked: release it and proceed.
				*theirs--
				*theirReleases++
				return aspect.Resume
			}
			// No partner yet: park.
			*mine++
			inv.SetAttr(sideKey{}, true)
			return aspect.Block
		},
		AbandonFn: func(inv *aspect.Invocation) {
			if _, waiting := inv.Attr(sideKey{}).(bool); !waiting {
				return
			}
			inv.DeleteAttr(sideKey{})
			// Conservation: parked-goroutine count on this side always
			// equals mine + myReleases. The abandoning goroutine leaves,
			// so retract an unreleased slot if one exists; otherwise it
			// must consume (and waste) a release token — its partner has
			// already proceeded, the price of cancelling mid-rendezvous.
			if *mine > 0 {
				*mine--
			} else if *myReleases > 0 {
				*myReleases--
			}
		},
		WakeList: []string{r.left, r.right},
	}
}

// Waiting returns the number of parked callers on each side (diagnostics;
// call only under the admission lock).
func (r *Rendezvous) Waiting() (left, right int) { return r.leftWaiting, r.rightWaiting }
