package auth

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/aspect"
)

func inv(method string) *aspect.Invocation {
	return aspect.NewInvocation(context.Background(), "comp", method, nil)
}

func TestPrincipalHasRole(t *testing.T) {
	p := &Principal{Name: "alice", Roles: []string{"agent", "admin"}}
	if !p.HasRole("agent") || !p.HasRole("admin") {
		t.Error("roles missing")
	}
	if p.HasRole("auditor") {
		t.Error("unexpected role")
	}
	var nilP *Principal
	if nilP.HasRole("agent") {
		t.Error("nil principal must have no roles")
	}
}

func TestTokenAttrsRoundTrip(t *testing.T) {
	i := inv("m")
	if _, ok := TokenOf(i); ok {
		t.Error("fresh invocation must carry no token")
	}
	WithToken(i, "tok-1")
	tok, ok := TokenOf(i)
	if !ok || tok != "tok-1" {
		t.Errorf("TokenOf = %q, %v", tok, ok)
	}
	if PrincipalOf(i) != nil {
		t.Error("fresh invocation must carry no principal")
	}
	p := &Principal{Name: "alice"}
	WithPrincipal(i, p)
	if PrincipalOf(i) != p {
		t.Error("principal round trip failed")
	}
}

func TestTokenStoreLifecycle(t *testing.T) {
	var s TokenStore // zero value usable
	tok := s.Issue("alice", "agent")
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	p, ok := s.Lookup(tok)
	if !ok || p.Name != "alice" || !p.HasRole("agent") {
		t.Fatalf("lookup = %+v, %v", p, ok)
	}
	if _, ok := s.Lookup("bogus"); ok {
		t.Error("bogus token must miss")
	}
	if !s.Revoke(tok) {
		t.Error("revoke must succeed")
	}
	if s.Revoke(tok) {
		t.Error("double revoke must fail")
	}
	if _, ok := s.Lookup(tok); ok {
		t.Error("revoked token must miss")
	}
}

func TestTokensUniqueProperty(t *testing.T) {
	f := func(n uint8) bool {
		var s TokenStore
		count := int(n%32) + 2
		seen := make(map[string]bool, count)
		for i := 0; i < count; i++ {
			tok := s.Issue("user")
			if seen[tok] {
				return false
			}
			seen[tok] = true
		}
		return s.Len() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuthenticatorFlow(t *testing.T) {
	store := NewTokenStore()
	tok := store.Issue("alice", "agent")
	a := Authenticator("auth", store)
	if a.Kind() != aspect.KindAuthentication {
		t.Errorf("kind = %q", a.Kind())
	}

	// Valid token: resume and attach principal.
	i := inv("open")
	WithToken(i, tok)
	if v := a.Precondition(i); v != aspect.Resume {
		t.Fatalf("valid token verdict = %v", v)
	}
	if p := PrincipalOf(i); p == nil || p.Name != "alice" {
		t.Fatalf("principal = %+v", p)
	}

	// Missing token: abort, ErrUnauthenticated.
	i2 := inv("open")
	if v := a.Precondition(i2); v != aspect.Abort {
		t.Fatalf("missing token verdict = %v", v)
	}
	if !errors.Is(i2.Err(), ErrUnauthenticated) {
		t.Errorf("err = %v", i2.Err())
	}

	// Unknown token: abort.
	i3 := inv("open")
	WithToken(i3, "forged")
	if v := a.Precondition(i3); v != aspect.Abort {
		t.Fatalf("forged token verdict = %v", v)
	}

	// Revoked token: abort.
	store.Revoke(tok)
	i4 := inv("open")
	WithToken(i4, tok)
	if v := a.Precondition(i4); v != aspect.Abort {
		t.Fatalf("revoked token verdict = %v", v)
	}
}

func TestACLAllows(t *testing.T) {
	acl := ACL{"open": {"client"}, "assign": {"agent", "admin"}}
	client := &Principal{Name: "c", Roles: []string{"client"}}
	agent := &Principal{Name: "a", Roles: []string{"agent"}}
	if !acl.Allows("open", client) || acl.Allows("assign", client) {
		t.Error("client permissions wrong")
	}
	if !acl.Allows("assign", agent) || acl.Allows("open", agent) {
		t.Error("agent permissions wrong")
	}
	if acl.Allows("open", nil) {
		t.Error("nil principal must be denied")
	}
	if acl.Allows("unknown", client) {
		t.Error("unlisted method must be denied")
	}
	var nilACL ACL
	if nilACL.Allows("open", client) {
		t.Error("nil ACL must deny everything")
	}
}

func TestAuthorizerFlow(t *testing.T) {
	acl := ACL{"assign": {"agent"}}
	a := Authorizer("authz", acl)
	if a.Kind() != aspect.KindAuthorization {
		t.Errorf("kind = %q", a.Kind())
	}

	// No principal: abort unauthenticated.
	i := inv("assign")
	if v := a.Precondition(i); v != aspect.Abort {
		t.Fatalf("no principal verdict = %v", v)
	}
	if !errors.Is(i.Err(), ErrUnauthenticated) {
		t.Errorf("err = %v", i.Err())
	}

	// Wrong role: abort permission denied.
	i2 := inv("assign")
	WithPrincipal(i2, &Principal{Name: "c", Roles: []string{"client"}})
	if v := a.Precondition(i2); v != aspect.Abort {
		t.Fatalf("wrong role verdict = %v", v)
	}
	if !errors.Is(i2.Err(), ErrPermissionDenied) {
		t.Errorf("err = %v", i2.Err())
	}

	// Right role: resume.
	i3 := inv("assign")
	WithPrincipal(i3, &Principal{Name: "a", Roles: []string{"agent"}})
	if v := a.Precondition(i3); v != aspect.Resume {
		t.Fatalf("right role verdict = %v", v)
	}
}

func TestSessionLimiterValidation(t *testing.T) {
	if _, err := NewSessionLimiter(0); err == nil {
		t.Error("limit 0 must error")
	}
}

func TestSessionLimiterPerPrincipal(t *testing.T) {
	sl, err := NewSessionLimiter(2, "m")
	if err != nil {
		t.Fatal(err)
	}
	a := sl.Aspect("sessions")
	alice := &Principal{Name: "alice"}
	bob := &Principal{Name: "bob"}

	mk := func(p *Principal) *aspect.Invocation {
		i := inv("m")
		WithPrincipal(i, p)
		return i
	}
	a1, a2, a3 := mk(alice), mk(alice), mk(alice)
	if a.Precondition(a1) != aspect.Resume || a.Precondition(a2) != aspect.Resume {
		t.Fatal("first two sessions must admit")
	}
	if a.Precondition(a3) != aspect.Block {
		t.Fatal("third session must block")
	}
	if a.Precondition(mk(bob)) != aspect.Resume {
		t.Fatal("bob must have his own quota")
	}
	if sl.Active("alice") != 2 || sl.Active("bob") != 1 {
		t.Fatalf("active = %d/%d", sl.Active("alice"), sl.Active("bob"))
	}
	a.Postaction(a1)
	if sl.Active("alice") != 1 {
		t.Fatal("completion must release the session")
	}
	// Cancel releases too.
	a.(aspect.Canceler).Cancel(a2)
	if sl.Active("alice") != 0 {
		t.Fatal("cancel must release the session")
	}
	// Unauthenticated invocations abort.
	un := inv("m")
	if a.Precondition(un) != aspect.Abort {
		t.Fatal("unauthenticated must abort")
	}
	if !errors.Is(un.Err(), ErrUnauthenticated) {
		t.Errorf("err = %v", un.Err())
	}
}

func TestTokenStoreConcurrent(t *testing.T) {
	var s TokenStore
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				tok := s.Issue("u", "r")
				if _, ok := s.Lookup(tok); !ok {
					t.Error("issued token must resolve")
					return
				}
				if !s.Revoke(tok) {
					t.Error("revoke must succeed")
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Errorf("len = %d, want 0", s.Len())
	}
}
