// Package auth provides the security aspects of the framework:
// authentication (the paper's Section 5.3 adaptability scenario, where an
// authentication concern is added to the running trouble-ticketing system
// without touching functional code) and role-based authorization.
//
// Credentials travel on the invocation as attributes: callers attach a
// token with WithToken, the Authenticator aspect resolves it against a
// TokenStore and attaches the resulting Principal, and downstream aspects
// (Authorizer, fair-share schedulers, audit trails) read it with
// PrincipalOf.
package auth

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/aspect"
)

// ErrUnauthenticated is recorded when no valid credential accompanies the
// invocation.
var ErrUnauthenticated = errors.New("auth: unauthenticated")

// ErrPermissionDenied is recorded when the authenticated principal lacks a
// required role.
var ErrPermissionDenied = errors.New("auth: permission denied")

// Principal is an authenticated caller identity.
type Principal struct {
	Name  string
	Roles []string
}

// HasRole reports whether the principal holds the given role.
func (p *Principal) HasRole(role string) bool {
	if p == nil {
		return false
	}
	for _, r := range p.Roles {
		if r == role {
			return true
		}
	}
	return false
}

type tokenKey struct{}
type principalKey struct{}

// WithToken attaches a bearer token to the invocation.
func WithToken(inv *aspect.Invocation, token string) {
	inv.SetAttr(tokenKey{}, token)
}

// TokenOf returns the invocation's bearer token, if any.
func TokenOf(inv *aspect.Invocation) (string, bool) {
	tok, ok := inv.Attr(tokenKey{}).(string)
	return tok, ok
}

// WithPrincipal attaches an authenticated principal to the invocation.
// The Authenticator aspect calls this; tests and trusted in-process callers
// may too.
func WithPrincipal(inv *aspect.Invocation, p *Principal) {
	inv.SetAttr(principalKey{}, p)
}

// PrincipalOf returns the invocation's authenticated principal, or nil.
func PrincipalOf(inv *aspect.Invocation) *Principal {
	p, _ := inv.Attr(principalKey{}).(*Principal)
	return p
}

// TokenStore maps bearer tokens to principals. It is safe for concurrent
// use; unlike guard state it is typically shared across components and
// mutated outside the admission lock. The zero value is ready to use.
type TokenStore struct {
	mu     sync.RWMutex
	byTok  map[string]*Principal
	nextID int
}

// NewTokenStore returns an empty store. Equivalent to new(TokenStore).
func NewTokenStore() *TokenStore { return new(TokenStore) }

// Issue creates a principal with the given name and roles and returns a
// fresh token for it.
func (s *TokenStore) Issue(name string, roles ...string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byTok == nil {
		s.byTok = make(map[string]*Principal, 8)
	}
	s.nextID++
	tok := fmt.Sprintf("tok-%s-%04d", name, s.nextID)
	s.byTok[tok] = &Principal{Name: name, Roles: roles}
	return tok
}

// Revoke invalidates a token, reporting whether it existed.
func (s *TokenStore) Revoke(token string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byTok[token]; !ok {
		return false
	}
	delete(s.byTok, token)
	return true
}

// Lookup resolves a token to its principal.
func (s *TokenStore) Lookup(token string) (*Principal, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.byTok[token]
	return p, ok
}

// Len returns the number of live tokens.
func (s *TokenStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byTok)
}

// Authenticator returns the authentication aspect: it resolves the
// invocation's token against the store, attaches the principal on success,
// and aborts with ErrUnauthenticated otherwise (the paper's
// OpenAuthenticationAspect / AssignAuthenticationAspect).
func Authenticator(name string, store *TokenStore) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindAuthentication,
		// Resolves against the internally-locked TokenStore and writes
		// only invocation attributes; never blocks.
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			tok, ok := TokenOf(inv)
			if !ok {
				inv.SetErr(fmt.Errorf("auth: %s.%s: missing token: %w",
					inv.Component(), inv.Method(), ErrUnauthenticated))
				return aspect.Abort
			}
			p, ok := store.Lookup(tok)
			if !ok {
				inv.SetErr(fmt.Errorf("auth: %s.%s: unknown token: %w",
					inv.Component(), inv.Method(), ErrUnauthenticated))
				return aspect.Abort
			}
			WithPrincipal(inv, p)
			return aspect.Resume
		},
	}
}

// ACL maps each participating method to the roles allowed to invoke it.
// Methods absent from the map are denied to everyone; a nil ACL denies
// everything.
type ACL map[string][]string

// Allows reports whether a principal may invoke the method.
func (a ACL) Allows(method string, p *Principal) bool {
	if p == nil {
		return false
	}
	for _, role := range a[method] {
		if p.HasRole(role) {
			return true
		}
	}
	return false
}

// Authorizer returns the authorization aspect: it requires an authenticated
// principal (attached by an Authenticator earlier in the same invocation)
// holding one of the ACL's roles for the method, aborting with
// ErrPermissionDenied otherwise.
func Authorizer(name string, acl ACL) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindAuthorization,
		// Stateless check over the immutable ACL; never blocks.
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			p := PrincipalOf(inv)
			if p == nil {
				inv.SetErr(fmt.Errorf("auth: %s.%s: no principal: %w",
					inv.Component(), inv.Method(), ErrUnauthenticated))
				return aspect.Abort
			}
			if !acl.Allows(inv.Method(), p) {
				inv.SetErr(fmt.Errorf("auth: %s.%s: principal %q: %w",
					inv.Component(), inv.Method(), p.Name, ErrPermissionDenied))
				return aspect.Abort
			}
			return aspect.Resume
		},
	}
}

// SessionLimiter bounds the number of concurrently admitted invocations per
// principal, blocking (not aborting) excess callers — an authentication-
// kind guard that exercises the paper's authentication wait queues
// (Figure 17).
type SessionLimiter struct {
	perPrincipal int
	active       map[string]int
	methods      []string
}

// NewSessionLimiter creates a session limiter.
func NewSessionLimiter(perPrincipal int, methods ...string) (*SessionLimiter, error) {
	if perPrincipal <= 0 {
		return nil, fmt.Errorf("auth: session limit %d must be positive", perPrincipal)
	}
	return &SessionLimiter{
		perPrincipal: perPrincipal,
		active:       make(map[string]int, 16),
		methods:      methods,
	}, nil
}

type sessionKey struct{}

// Aspect returns the guard enforcing the session limit. It must run after
// an Authenticator in the same or an outer layer; unauthenticated
// invocations abort.
func (sl *SessionLimiter) Aspect(name string) aspect.Aspect {
	release := func(inv *aspect.Invocation) {
		nm, _ := inv.Attr(sessionKey{}).(string)
		inv.DeleteAttr(sessionKey{})
		if n := sl.active[nm]; n <= 1 {
			delete(sl.active, nm)
		} else {
			sl.active[nm] = n - 1
		}
	}
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindAuthentication,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			p := PrincipalOf(inv)
			if p == nil {
				inv.SetErr(fmt.Errorf("auth: %s.%s: session limit requires authentication: %w",
					inv.Component(), inv.Method(), ErrUnauthenticated))
				return aspect.Abort
			}
			if sl.active[p.Name] >= sl.perPrincipal {
				return aspect.Block
			}
			sl.active[p.Name]++
			inv.SetAttr(sessionKey{}, p.Name)
			return aspect.Resume
		},
		Post:     release,
		CancelFn: release,
		WakeList: sl.methods,
	}
}

// Active returns a principal's admitted-session count (diagnostics; call
// only under the admission lock).
func (sl *SessionLimiter) Active(principal string) int { return sl.active[principal] }
