package syncguard

import (
	"context"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

func inv(method string) *aspect.Invocation {
	return aspect.NewInvocation(context.Background(), "comp", method, nil)
}

func TestNewGuardRequiresReady(t *testing.T) {
	if _, err := NewGuard("g", GuardSpec{}); err == nil {
		t.Fatal("nil Ready must error")
	}
}

func TestGuardDefaults(t *testing.T) {
	g, err := NewGuard("g", GuardSpec{Ready: func(*aspect.Invocation) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind() != aspect.KindSynchronization {
		t.Errorf("default kind = %q", g.Kind())
	}
	if g.Name() != "g" {
		t.Errorf("name = %q", g.Name())
	}
	i := inv("m")
	if v := g.Precondition(i); v != aspect.Resume {
		t.Errorf("ready guard verdict = %v", v)
	}
	g.Postaction(i) // nil release must not panic
	g.Cancel(i)
	if g.Wakes() != nil {
		t.Errorf("wakes = %v", g.Wakes())
	}
}

func TestGuardKindOverride(t *testing.T) {
	g, err := NewGuard("g", GuardSpec{
		Kind:  aspect.KindScheduling,
		Ready: func(*aspect.Invocation) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind() != aspect.KindScheduling {
		t.Errorf("kind = %q", g.Kind())
	}
}

func TestGuardBlocksWhenNotReady(t *testing.T) {
	ready := false
	admits := 0
	g, err := NewGuard("g", GuardSpec{
		Ready: func(*aspect.Invocation) bool { return ready },
		Admit: func(*aspect.Invocation) { admits++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := g.Precondition(inv("m")); v != aspect.Block {
		t.Errorf("verdict = %v, want Block", v)
	}
	if admits != 0 {
		t.Error("blocked precondition must not admit")
	}
	ready = true
	if v := g.Precondition(inv("m")); v != aspect.Resume {
		t.Errorf("verdict = %v, want Resume", v)
	}
	if admits != 1 {
		t.Errorf("admits = %d, want 1", admits)
	}
}

func TestMutexAdmissionProtocol(t *testing.T) {
	m := NewMutex("open", "assign")
	a := m.Aspect("mutex")
	i := inv("open")
	if v := a.Precondition(i); v != aspect.Resume {
		t.Fatalf("first admission: %v", v)
	}
	if !m.Locked() {
		t.Fatal("mutex must be held")
	}
	if v := a.Precondition(inv("assign")); v != aspect.Block {
		t.Fatalf("second admission: %v, want Block", v)
	}
	a.Postaction(i)
	if m.Locked() {
		t.Fatal("mutex must be released")
	}
	// Cancel also releases.
	if v := a.Precondition(inv("open")); v != aspect.Resume {
		t.Fatal("re-admission failed")
	}
	a.(aspect.Canceler).Cancel(i)
	if m.Locked() {
		t.Fatal("cancel must release")
	}
	if w := a.(aspect.Waker).Wakes(); len(w) != 2 {
		t.Errorf("wakes = %v", w)
	}
}

func TestSemaphoreValidation(t *testing.T) {
	if _, err := NewSemaphore(0); err == nil {
		t.Error("limit 0 must error")
	}
	if _, err := NewSemaphore(-1); err == nil {
		t.Error("negative limit must error")
	}
}

func TestSemaphoreCounting(t *testing.T) {
	s, err := NewSemaphore(2, "m")
	if err != nil {
		t.Fatal(err)
	}
	a := s.Aspect("sem")
	i1, i2 := inv("m"), inv("m")
	if a.Precondition(i1) != aspect.Resume || a.Precondition(i2) != aspect.Resume {
		t.Fatal("first two admissions must resume")
	}
	if s.InUse() != 2 {
		t.Fatalf("inUse = %d", s.InUse())
	}
	if a.Precondition(inv("m")) != aspect.Block {
		t.Fatal("third admission must block")
	}
	a.Postaction(i1)
	if a.Precondition(inv("m")) != aspect.Resume {
		t.Fatal("admission after release must resume")
	}
}

func TestBufferValidation(t *testing.T) {
	if _, err := NewBuffer(0, "open", "assign"); err == nil {
		t.Error("capacity 0 must error")
	}
	if _, err := NewBuffer(1, "", "assign"); err == nil {
		t.Error("empty producer must error")
	}
	if _, err := NewBuffer(1, "open", ""); err == nil {
		t.Error("empty consumer must error")
	}
	if _, err := NewBuffer(1, "open", "open"); err == nil {
		t.Error("same method for both roles must error")
	}
}

func TestBufferProducerConsumerProtocol(t *testing.T) {
	b, err := NewBuffer(2, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	prod, cons := b.ProducerAspect(), b.ConsumerAspect()

	// Empty buffer: consumer blocks, producer admits.
	if v := cons.Precondition(inv("assign")); v != aspect.Block {
		t.Fatalf("consume from empty: %v", v)
	}
	p1 := inv("open")
	if v := prod.Precondition(p1); v != aspect.Resume {
		t.Fatalf("produce into empty: %v", v)
	}
	// Exclusive mode: second producer blocks while the first is active.
	if v := prod.Precondition(inv("open")); v != aspect.Block {
		t.Fatalf("concurrent producer: %v, want Block", v)
	}
	// Consumer still blocks: the item is reserved, not committed.
	if v := cons.Precondition(inv("assign")); v != aspect.Block {
		t.Fatalf("consume of uncommitted item: %v, want Block", v)
	}
	prod.Postaction(p1)
	if b.Count() != 1 {
		t.Fatalf("count = %d, want 1", b.Count())
	}
	// Now the consumer may proceed.
	c1 := inv("assign")
	if v := cons.Precondition(c1); v != aspect.Resume {
		t.Fatalf("consume committed item: %v", v)
	}
	cons.Postaction(c1)
	if b.Count() != 0 {
		t.Fatalf("count = %d, want 0", b.Count())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferCapacityRespectedViaReservation(t *testing.T) {
	b, err := NewBuffer(1, "open", "assign", WithConcurrentAccess())
	if err != nil {
		t.Fatal(err)
	}
	prod := b.ProducerAspect()
	p1 := inv("open")
	if prod.Precondition(p1) != aspect.Resume {
		t.Fatal("first produce must admit")
	}
	// Even in concurrent mode, a second producer must block: the single
	// slot is reserved although not yet committed.
	if prod.Precondition(inv("open")) != aspect.Block {
		t.Fatal("reservation must prevent overfill")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferCancelRollsBackReservation(t *testing.T) {
	b, err := NewBuffer(1, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	prod := b.ProducerAspect()
	p1 := inv("open")
	if prod.Precondition(p1) != aspect.Resume {
		t.Fatal("admit failed")
	}
	prod.(aspect.Canceler).Cancel(p1)
	if b.Count() != 0 {
		t.Fatalf("count after cancel = %d", b.Count())
	}
	// The slot must be available again.
	if prod.Precondition(inv("open")) != aspect.Resume {
		t.Fatal("slot not released by cancel")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferFailedBodyDoesNotCommit(t *testing.T) {
	b, err := NewBuffer(1, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	prod := b.ProducerAspect()
	p1 := inv("open")
	if prod.Precondition(p1) != aspect.Resume {
		t.Fatal("admit failed")
	}
	p1.SetResult(nil, context.DeadlineExceeded) // body failed
	prod.Postaction(p1)
	if b.Count() != 0 {
		t.Fatalf("failed produce committed: count = %d", b.Count())
	}
	cons := b.ConsumerAspect()
	c1 := inv("assign")
	if cons.Precondition(c1) != aspect.Block {
		t.Fatal("consumer must not see a failed produce")
	}
}

func TestRWLockExclusion(t *testing.T) {
	rw := NewRWLock("get", "put")
	r, w := rw.ReaderAspect("r"), rw.WriterAspect("w")

	r1, r2 := inv("get"), inv("get")
	if r.Precondition(r1) != aspect.Resume || r.Precondition(r2) != aspect.Resume {
		t.Fatal("concurrent readers must admit")
	}
	if rw.Readers() != 2 {
		t.Fatalf("readers = %d", rw.Readers())
	}
	if w.Precondition(inv("put")) != aspect.Block {
		t.Fatal("writer must block while readers active")
	}
	r.Postaction(r1)
	r.Postaction(r2)
	w1 := inv("put")
	if w.Precondition(w1) != aspect.Resume {
		t.Fatal("writer must admit when idle")
	}
	if !rw.Writing() {
		t.Fatal("writing flag not set")
	}
	if r.Precondition(inv("get")) != aspect.Block {
		t.Fatal("reader must block while writer active")
	}
	if w.Precondition(inv("put")) != aspect.Block {
		t.Fatal("second writer must block")
	}
	w.Postaction(w1)
	if err := rw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.Precondition(inv("get")) != aspect.Resume {
		t.Fatal("reader must admit after writer")
	}
}

// TestBufferUnderModeratorConcurrency drives the full protocol with real
// goroutines: P producers and C consumers transfer N items through a
// guarded ring buffer; nothing may be lost, duplicated, or overfilled.
func TestBufferUnderModeratorConcurrency(t *testing.T) {
	const capacity, producers, consumers, perProducer = 4, 4, 4, 50
	b, err := NewBuffer(capacity, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	mod := moderator.New("ticket")
	if err := mod.Register("open", aspect.KindSynchronization, b.ProducerAspect()); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("assign", aspect.KindSynchronization, b.ConsumerAspect()); err != nil {
		t.Fatal(err)
	}

	// The functional component: a plain, unsynchronized ring buffer.
	ring := make([]int, capacity)
	head, tail, size := 0, 0, 0
	push := func(v int) {
		if size == capacity {
			t.Error("ring overflow: synchronization aspect failed")
			return
		}
		ring[tail] = v
		tail = (tail + 1) % capacity
		size++
	}
	pop := func() int {
		if size == 0 {
			t.Error("ring underflow: synchronization aspect failed")
			return -1
		}
		v := ring[head]
		head = (head + 1) % capacity
		size--
		return v
	}

	total := producers * perProducer
	var wg sync.WaitGroup
	received := make(chan int, total)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				i := inv("open")
				adm, err := mod.Preactivation(i)
				if err != nil {
					t.Errorf("producer: %v", err)
					return
				}
				push(p*perProducer + k)
				mod.Postactivation(i, adm)
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < total/consumers; k++ {
				i := inv("assign")
				adm, err := mod.Preactivation(i)
				if err != nil {
					t.Errorf("consumer: %v", err)
					return
				}
				received <- pop()
				mod.Postactivation(i, adm)
			}
		}()
	}
	wg.Wait()
	close(received)

	seen := make(map[int]bool, total)
	for v := range received {
		if v < 0 {
			continue // underflow already reported
		}
		if seen[v] {
			t.Errorf("item %d received twice", v)
		}
		seen[v] = true
	}
	if len(seen) != total {
		t.Errorf("received %d distinct items, want %d", len(seen), total)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if b.Count() != 0 {
		t.Errorf("final count = %d, want 0", b.Count())
	}
}
