package syncguard

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/aspect"
)

// bufferModel is a reference interpreter for random admission/completion/
// cancellation sequences, used to cross-check the Buffer guard state.
type bufferModel struct {
	capacity  int
	committed int
	// outstanding admissions, not yet completed or cancelled
	prodPending []*aspect.Invocation
	consPending []*aspect.Invocation
	exclusive   bool
}

func (m *bufferModel) producerAdmissible() bool {
	if m.exclusive && len(m.prodPending) > 0 {
		return false
	}
	return m.committed+len(m.prodPending) < m.capacity
}

func (m *bufferModel) consumerAdmissible() bool {
	if m.exclusive && len(m.consPending) > 0 {
		return false
	}
	return m.committed-len(m.consPending) > 0
}

// TestBufferMatchesModelProperty drives the buffer guards with random
// operation sequences and checks, at every step, that (a) admissibility
// matches an independent model, (b) the guard invariants hold, and (c) the
// committed count tracks the model.
func TestBufferMatchesModelProperty(t *testing.T) {
	run := func(ops []uint8, capRaw uint8, exclusive bool) error {
		capacity := int(capRaw%5) + 1
		var buildOpts []BufferOption
		if !exclusive {
			buildOpts = append(buildOpts, WithConcurrentAccess())
		}
		b, err := NewBuffer(capacity, "open", "assign", buildOpts...)
		if err != nil {
			return err
		}
		prod, cons := b.ProducerAspect(), b.ConsumerAspect()
		model := &bufferModel{capacity: capacity, exclusive: exclusive}

		for step, op := range ops {
			switch op % 6 {
			case 0: // try to admit a producer
				i := inv("open")
				v := prod.Precondition(i)
				want := model.producerAdmissible()
				if (v == aspect.Resume) != want {
					return errorsStepf(step, "producer admissible=%v verdict=%v", want, v)
				}
				if v == aspect.Resume {
					model.prodPending = append(model.prodPending, i)
				}
			case 1: // try to admit a consumer
				i := inv("assign")
				v := cons.Precondition(i)
				want := model.consumerAdmissible()
				if (v == aspect.Resume) != want {
					return errorsStepf(step, "consumer admissible=%v verdict=%v", want, v)
				}
				if v == aspect.Resume {
					model.consPending = append(model.consPending, i)
				}
			case 2: // complete a pending producer
				if n := len(model.prodPending); n > 0 {
					i := model.prodPending[n-1]
					model.prodPending = model.prodPending[:n-1]
					prod.Postaction(i)
					model.committed++
				}
			case 3: // complete a pending consumer
				if n := len(model.consPending); n > 0 {
					i := model.consPending[n-1]
					model.consPending = model.consPending[:n-1]
					cons.Postaction(i)
					model.committed--
				}
			case 4: // cancel a pending producer
				if n := len(model.prodPending); n > 0 {
					i := model.prodPending[n-1]
					model.prodPending = model.prodPending[:n-1]
					prod.(aspect.Canceler).Cancel(i)
				}
			case 5: // cancel a pending consumer
				if n := len(model.consPending); n > 0 {
					i := model.consPending[n-1]
					model.consPending = model.consPending[:n-1]
					cons.(aspect.Canceler).Cancel(i)
				}
			}
			if err := b.CheckInvariants(); err != nil {
				return errorsStepf(step, "invariant: %v", err)
			}
			if b.Count() != model.committed {
				return errorsStepf(step, "count=%d model=%d", b.Count(), model.committed)
			}
		}
		return nil
	}

	f := func(ops []uint8, capRaw uint8, exclusive bool) bool {
		if err := run(ops, capRaw, exclusive); err != nil {
			t.Logf("sequence failed: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func errorsStepf(step int, format string, args ...any) error {
	return fmt.Errorf("step %d: %s", step, fmt.Sprintf(format, args...))
}
