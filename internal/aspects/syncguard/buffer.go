package syncguard

import (
	"fmt"

	"repro/internal/aspect"
)

// Buffer is the guard state of a bounded-buffer producer/consumer protocol
// — the synchronization constraints of the paper's trouble-ticketing
// example, extracted from the functional component. The component keeps the
// data; the Buffer keeps only admission counters.
//
// The producer and consumer aspects wake each other's methods, so the
// moderator places both methods in one admission domain at registration —
// their hooks mutate this shared state under a single lock even on the
// sharded moderator.
//
// In exclusive mode (the default, matching the paper's ActiveOpen == 0 /
// ActiveAssign == 0 guards) at most one producer and one consumer execute
// at a time. In concurrent mode several producers (and consumers) may be
// admitted simultaneously, in which case the functional component must
// tolerate concurrent body execution; admission still never overfills or
// underflows the buffer, because slots are reserved at admission time.
//
// Note: the paper's Figure 7 listing increments the item counter inside
// precondition() and bumps ActiveAssign where ActiveOpen is meant (an
// evident typo). This implementation realizes the intended monitor
// semantics: reservation at admission, commit at post-activation, rollback
// on cancellation.
type Buffer struct {
	capacity int
	producer string // producer method name (the paper's "open")
	consumer string // consumer method name (the paper's "assign")

	exclusive bool

	count    int // committed items in the buffer
	reserved int // slots reserved by admitted, not-yet-completed producers
	claimed  int // items claimed by admitted, not-yet-completed consumers

	activeProducers int
	activeConsumers int
}

// BufferOption configures NewBuffer.
type BufferOption func(*Buffer)

// WithConcurrentAccess lifts the one-producer/one-consumer-at-a-time
// restriction. The guarded component must then be safe under concurrent
// invocation of its bodies.
func WithConcurrentAccess() BufferOption {
	return func(b *Buffer) { b.exclusive = false }
}

// NewBuffer creates bounded-buffer guard state for a buffer of the given
// capacity, with the named producer and consumer methods.
func NewBuffer(capacity int, producerMethod, consumerMethod string, opts ...BufferOption) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("syncguard: buffer capacity %d must be positive", capacity)
	}
	if producerMethod == "" || consumerMethod == "" {
		return nil, fmt.Errorf("syncguard: buffer methods %q/%q must be non-empty", producerMethod, consumerMethod)
	}
	if producerMethod == consumerMethod {
		return nil, fmt.Errorf("syncguard: producer and consumer method are both %q", producerMethod)
	}
	b := &Buffer{
		capacity:  capacity,
		producer:  producerMethod,
		consumer:  consumerMethod,
		exclusive: true,
	}
	for _, opt := range opts {
		opt(b)
	}
	return b, nil
}

// ProducerAspect returns the synchronization aspect guarding the producer
// method (the paper's OpenSynchronizationAspect).
func (b *Buffer) ProducerAspect() aspect.Aspect {
	g, err := NewGuard(b.producer+"-sync", GuardSpec{
		Ready: func(*aspect.Invocation) bool {
			if b.exclusive && b.activeProducers > 0 {
				return false
			}
			return b.count+b.reserved < b.capacity
		},
		Admit: func(*aspect.Invocation) {
			b.reserved++
			b.activeProducers++
		},
		Release: nil, // split: Cancel differs from Postaction
		Wakes:   []string{b.producer, b.consumer},
	})
	if err != nil {
		panic(err)
	}
	return &bufferProducer{Guard: g, b: b}
}

// ConsumerAspect returns the synchronization aspect guarding the consumer
// method (the paper's AssignSynchronizationAspect).
func (b *Buffer) ConsumerAspect() aspect.Aspect {
	g, err := NewGuard(b.consumer+"-sync", GuardSpec{
		Ready: func(*aspect.Invocation) bool {
			if b.exclusive && b.activeConsumers > 0 {
				return false
			}
			return b.count-b.claimed > 0
		},
		Admit: func(*aspect.Invocation) {
			b.claimed++
			b.activeConsumers++
		},
		Release: nil,
		Wakes:   []string{b.producer, b.consumer},
	})
	if err != nil {
		panic(err)
	}
	return &bufferConsumer{Guard: g, b: b}
}

// bufferProducer specializes the generic guard: commit on post-activation,
// rollback on cancel.
type bufferProducer struct {
	*Guard
	b *Buffer
}

func (p *bufferProducer) Postaction(inv *aspect.Invocation) {
	p.b.reserved--
	p.b.activeProducers--
	if inv.Err() == nil {
		p.b.count++ // commit the reserved slot
	}
}

func (p *bufferProducer) Cancel(*aspect.Invocation) {
	p.b.reserved--
	p.b.activeProducers--
}

// bufferConsumer commits a removal on post-activation, rolls back on cancel.
type bufferConsumer struct {
	*Guard
	b *Buffer
}

func (c *bufferConsumer) Postaction(inv *aspect.Invocation) {
	c.b.claimed--
	c.b.activeConsumers--
	if inv.Err() == nil {
		c.b.count-- // commit the claimed removal
	}
}

func (c *bufferConsumer) Cancel(*aspect.Invocation) {
	c.b.claimed--
	c.b.activeConsumers--
}

// Count returns the number of committed items (diagnostics; call only under
// the admission lock or when the component is quiescent).
func (b *Buffer) Count() int { return b.count }

// Capacity returns the buffer capacity.
func (b *Buffer) Capacity() int { return b.capacity }

// CheckInvariants validates the guard-state invariants, returning a
// descriptive error on violation. Tests call it between operations.
func (b *Buffer) CheckInvariants() error {
	switch {
	case b.count < 0:
		return fmt.Errorf("syncguard: buffer count %d < 0", b.count)
	case b.count > b.capacity:
		return fmt.Errorf("syncguard: buffer count %d > capacity %d", b.count, b.capacity)
	case b.reserved < 0:
		return fmt.Errorf("syncguard: reserved %d < 0", b.reserved)
	case b.claimed < 0:
		return fmt.Errorf("syncguard: claimed %d < 0", b.claimed)
	case b.count+b.reserved > b.capacity:
		return fmt.Errorf("syncguard: count %d + reserved %d > capacity %d", b.count, b.reserved, b.capacity)
	case b.claimed > b.count:
		return fmt.Errorf("syncguard: claimed %d > count %d", b.claimed, b.count)
	case b.activeProducers < 0 || b.activeConsumers < 0:
		return fmt.Errorf("syncguard: negative active counters %d/%d", b.activeProducers, b.activeConsumers)
	case b.exclusive && (b.activeProducers > 1 || b.activeConsumers > 1):
		return fmt.Errorf("syncguard: exclusivity violated: %d producers, %d consumers", b.activeProducers, b.activeConsumers)
	}
	return nil
}
