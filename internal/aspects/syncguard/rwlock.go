package syncguard

import (
	"fmt"

	"repro/internal/aspect"
)

// RWLock provides readers-writer admission across a component's methods:
// any number of concurrent readers, or one writer, never both. Register the
// reader aspect for each read-only method and the writer aspect for each
// mutating method.
//
// The guard is neutral between readers and writers; to avoid writer
// starvation under sustained read load, give writer invocations a higher
// Priority and run the moderator with the priority wake policy in
// WakeSingle mode.
type RWLock struct {
	readers int
	writing bool
	methods []string
}

// NewRWLock creates readers-writer guard state spanning the given methods
// (readers and writers alike; the set is used as the wake list).
func NewRWLock(methods ...string) *RWLock {
	return &RWLock{methods: methods}
}

// ReaderAspect returns the aspect guarding read-only methods.
func (rw *RWLock) ReaderAspect(name string) aspect.Aspect {
	g, err := NewGuard(name, GuardSpec{
		Ready:   func(*aspect.Invocation) bool { return !rw.writing },
		Admit:   func(*aspect.Invocation) { rw.readers++ },
		Release: func(*aspect.Invocation) { rw.readers-- },
		Wakes:   rw.methods,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// WriterAspect returns the aspect guarding mutating methods.
func (rw *RWLock) WriterAspect(name string) aspect.Aspect {
	g, err := NewGuard(name, GuardSpec{
		Ready:   func(*aspect.Invocation) bool { return !rw.writing && rw.readers == 0 },
		Admit:   func(*aspect.Invocation) { rw.writing = true },
		Release: func(*aspect.Invocation) { rw.writing = false },
		Wakes:   rw.methods,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// Readers returns the number of admitted readers (diagnostics; call only
// under the admission lock).
func (rw *RWLock) Readers() int { return rw.readers }

// Writing reports whether a writer is admitted (diagnostics; call only
// under the admission lock).
func (rw *RWLock) Writing() bool { return rw.writing }

// CheckInvariants validates the readers-writer exclusion invariant.
func (rw *RWLock) CheckInvariants() error {
	if rw.readers < 0 {
		return fmt.Errorf("syncguard: rwlock readers %d < 0", rw.readers)
	}
	if rw.writing && rw.readers > 0 {
		return fmt.Errorf("syncguard: rwlock writer admitted with %d readers", rw.readers)
	}
	return nil
}
