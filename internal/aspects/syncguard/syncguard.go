// Package syncguard provides the synchronization aspects of the framework:
// guard-based admission controllers that keep a sequential functional
// component correct under concurrent invocation, without any concurrency
// code inside the component itself (the paper's OpenSynchronizationAspect
// and AssignSynchronizationAspect, Figure 7).
//
// Every aspect in this package follows the moderator contract: its
// Precondition either admits the invocation — updating the shared guard
// state to record the admission — or returns Block; its Postaction releases
// what the admission reserved; its Cancel undoes an admission that a later
// aspect rolled back. All three hooks run under the admission lock of the
// method's admission domain, so the guard state needs no locking of its
// own — PROVIDED every method that shares the guard state lives in the
// same domain. The moderator groups methods automatically when a guard's
// wake list names them (a Buffer's producer wakes its consumer and vice
// versa, so the pair is grouped at registration); guards that share state
// without waking each other must be grouped explicitly, via
// moderator.GroupMethods or core.Builder.Group, before traffic starts.
package syncguard

import (
	"fmt"

	"repro/internal/aspect"
)

// Guard is a generic condition/action synchronization aspect: Ready decides
// admissibility, Admit records the admission, Release undoes it at
// post-activation, and the wake list names the methods whose waiters the
// release may unblock. Mutex, Semaphore, Buffer, and RWLock are all built
// on it; applications may build their own.
type Guard struct {
	name  string
	kind  aspect.Kind
	ready func(inv *aspect.Invocation) bool
	admit func(inv *aspect.Invocation)
	undo  func(inv *aspect.Invocation)
	wakes []string
}

var (
	_ aspect.Aspect   = (*Guard)(nil)
	_ aspect.Canceler = (*Guard)(nil)
	_ aspect.Waker    = (*Guard)(nil)
)

// GuardSpec configures NewGuard. Ready is required; the rest may be nil.
type GuardSpec struct {
	// Kind overrides the aspect kind (default KindSynchronization).
	Kind aspect.Kind
	// Ready reports whether the invocation may be admitted now.
	Ready func(inv *aspect.Invocation) bool
	// Admit records the admission (reserve a slot, bump a counter).
	Admit func(inv *aspect.Invocation)
	// Release undoes the admission at post-activation.
	Release func(inv *aspect.Invocation)
	// Wakes lists methods whose blocked callers a release may unblock.
	Wakes []string
}

// NewGuard builds a guard aspect from a spec.
func NewGuard(name string, spec GuardSpec) (*Guard, error) {
	if spec.Ready == nil {
		return nil, fmt.Errorf("syncguard: guard %q: nil Ready", name)
	}
	kind := spec.Kind
	if kind == "" {
		kind = aspect.KindSynchronization
	}
	return &Guard{
		name:  name,
		kind:  kind,
		ready: spec.Ready,
		admit: spec.Admit,
		undo:  spec.Release,
		wakes: spec.Wakes,
	}, nil
}

// Name implements aspect.Aspect.
func (g *Guard) Name() string { return g.name }

// Kind implements aspect.Aspect.
func (g *Guard) Kind() aspect.Kind { return g.kind }

// Precondition implements aspect.Aspect.
func (g *Guard) Precondition(inv *aspect.Invocation) aspect.Verdict {
	if !g.ready(inv) {
		return aspect.Block
	}
	if g.admit != nil {
		g.admit(inv)
	}
	return aspect.Resume
}

// Postaction implements aspect.Aspect.
func (g *Guard) Postaction(inv *aspect.Invocation) {
	if g.undo != nil {
		g.undo(inv)
	}
}

// Cancel implements aspect.Canceler.
func (g *Guard) Cancel(inv *aspect.Invocation) {
	if g.undo != nil {
		g.undo(inv)
	}
}

// Wakes implements aspect.Waker.
func (g *Guard) Wakes() []string { return g.wakes }

// Mutex is mutual exclusion across a set of participating methods: at most
// one admitted invocation at a time (the paper's ActiveOpen == 0 guard).
type Mutex struct {
	active  bool
	methods []string
}

// NewMutex creates a mutex spanning the given methods. Register the
// returned Aspect for each method of the set.
func NewMutex(methods ...string) *Mutex {
	return &Mutex{methods: methods}
}

// Aspect returns the guard aspect enforcing the mutex.
func (m *Mutex) Aspect(name string) aspect.Aspect {
	g, err := NewGuard(name, GuardSpec{
		Ready:   func(*aspect.Invocation) bool { return !m.active },
		Admit:   func(*aspect.Invocation) { m.active = true },
		Release: func(*aspect.Invocation) { m.active = false },
		Wakes:   m.methods,
	})
	if err != nil {
		// Unreachable: Ready is always non-nil here.
		panic(err)
	}
	return g
}

// Locked reports whether an invocation is currently admitted. Callers must
// hold the moderator's admission lock (i.e. call from aspect hooks only);
// it exists for tests and diagnostics.
func (m *Mutex) Locked() bool { return m.active }

// Semaphore admits at most N concurrent invocations across a set of
// methods.
type Semaphore struct {
	inUse   int
	limit   int
	methods []string
}

// NewSemaphore creates a counting semaphore guard with the given limit.
func NewSemaphore(limit int, methods ...string) (*Semaphore, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("syncguard: semaphore limit %d must be positive", limit)
	}
	return &Semaphore{limit: limit, methods: methods}, nil
}

// Aspect returns the guard aspect enforcing the semaphore.
func (s *Semaphore) Aspect(name string) aspect.Aspect {
	g, err := NewGuard(name, GuardSpec{
		Ready:   func(*aspect.Invocation) bool { return s.inUse < s.limit },
		Admit:   func(*aspect.Invocation) { s.inUse++ },
		Release: func(*aspect.Invocation) { s.inUse-- },
		Wakes:   s.methods,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// InUse returns the number of admitted invocations (diagnostics; call only
// under the admission lock).
func (s *Semaphore) InUse() int { return s.inUse }
