package audit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
)

func inv(method string) *aspect.Invocation {
	return aspect.NewInvocation(context.Background(), "comp", method, nil)
}

func fixedClock() func() time.Time {
	t0 := time.Date(2001, 4, 16, 12, 0, 0, 0, time.UTC) // ICDCS 2001
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestNewTrailValidation(t *testing.T) {
	if _, err := NewTrail(0); err == nil {
		t.Error("capacity 0 must error")
	}
	if _, err := NewTrail(-1); err == nil {
		t.Error("negative capacity must error")
	}
}

func TestAspectRecordsPreAndPost(t *testing.T) {
	tr, err := NewTrail(16, WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	if a.Kind() != aspect.KindAudit {
		t.Errorf("kind = %q", a.Kind())
	}
	i := inv("open")
	if v := a.Precondition(i); v != aspect.Resume {
		t.Fatalf("audit must never gate: %v", v)
	}
	i.SetResult("done", nil)
	a.Postaction(i)

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Phase != PhasePre || events[1].Phase != PhasePost {
		t.Errorf("phases = %v, %v", events[0].Phase, events[1].Phase)
	}
	if events[0].Method != "open" || events[0].Component != "comp" {
		t.Errorf("identity = %s.%s", events[0].Component, events[0].Method)
	}
	if events[0].Invocation != i.ID() || events[1].Invocation != i.ID() {
		t.Error("invocation IDs must match")
	}
	if events[0].Seq >= events[1].Seq {
		t.Error("sequence must increase")
	}
	if events[1].Err != "" {
		t.Errorf("successful post err = %q", events[1].Err)
	}
}

func TestPostRecordsError(t *testing.T) {
	tr, err := NewTrail(4)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	i := inv("open")
	a.Precondition(i)
	i.SetResult(nil, errors.New("buffer torn"))
	a.Postaction(i)
	events := tr.Events()
	if events[1].Err != "buffer torn" {
		t.Errorf("err = %q", events[1].Err)
	}
}

func TestCancelRecorded(t *testing.T) {
	tr, err := NewTrail(4)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	i := inv("open")
	a.Precondition(i)
	a.(aspect.Canceler).Cancel(i)
	events := tr.Events()
	if len(events) != 2 || events[1].Phase != PhaseCancel {
		t.Fatalf("events = %+v", events)
	}
}

func TestPrincipalAttributed(t *testing.T) {
	tr, err := NewTrail(4)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	i := inv("open")
	auth.WithPrincipal(i, &auth.Principal{Name: "alice"})
	a.Precondition(i)
	if got := tr.Events()[0].Principal; got != "alice" {
		t.Errorf("principal = %q", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr, err := NewTrail(3, WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	for k := 0; k < 5; k++ {
		a.Precondition(inv("open"))
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Seq() != 5 {
		t.Fatalf("seq = %d, want 5", tr.Seq())
	}
	events := tr.Events()
	// Oldest first: sequences 3, 4, 5.
	for k, want := range []uint64{3, 4, 5} {
		if events[k].Seq != want {
			t.Errorf("event %d seq = %d, want %d", k, events[k].Seq, want)
		}
	}
}

func TestReset(t *testing.T) {
	tr, err := NewTrail(4)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	a.Precondition(inv("open"))
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("len after reset = %d", tr.Len())
	}
	if tr.Seq() != 1 {
		t.Errorf("seq must survive reset: %d", tr.Seq())
	}
}

func TestSinkReceivesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	tr, err := NewTrail(4, WithSink(&buf), WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	i := inv("open")
	a.Precondition(i)
	i.SetResult(nil, nil)
	a.Postaction(i)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if e.Method != "open" || e.Phase != PhasePre {
		t.Errorf("decoded event = %+v", e)
	}
	if tr.Drops() != 0 {
		t.Errorf("drops = %d", tr.Drops())
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestSinkFailureCountsDrops(t *testing.T) {
	tr, err := NewTrail(4, WithSink(failingWriter{}))
	if err != nil {
		t.Fatal(err)
	}
	tr.Aspect("audit").Precondition(inv("open"))
	if tr.Drops() != 1 {
		t.Errorf("drops = %d, want 1", tr.Drops())
	}
	// The ring still has the event.
	if tr.Len() != 1 {
		t.Errorf("len = %d, want 1", tr.Len())
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr, err := NewTrail(1024)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Aspect("audit")
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				i := inv("open")
				a.Precondition(i)
				a.Postaction(i)
			}
		}()
	}
	wg.Wait()
	if got := tr.Seq(); got != workers*per*2 {
		t.Errorf("seq = %d, want %d", got, workers*per*2)
	}
	// Sequence numbers in the ring must be strictly increasing.
	events := tr.Events()
	for k := 1; k < len(events); k++ {
		if events[k].Seq <= events[k-1].Seq {
			t.Fatalf("ring order broken at %d: %d then %d", k, events[k-1].Seq, events[k].Seq)
		}
	}
}
