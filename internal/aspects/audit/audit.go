// Package audit provides the audit-trail aspect of the framework: a
// structured record of every guarded invocation's pre-activation,
// completion, and cancellation, attributable to the authenticated
// principal. Audits are one of the interaction requirements the paper
// names for open e-commerce systems (Section 2).
//
// A Trail may be shared by several components (and therefore several
// admission locks), so unlike guard state it carries its own mutex. Events
// are retained in a bounded ring; an optional sink receives each event as a
// JSON line.
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
)

// Phase identifies which hook produced an event.
type Phase string

// Phases recorded by the aspect.
const (
	PhasePre    Phase = "pre"    // admission granted
	PhasePost   Phase = "post"   // method completed
	PhaseCancel Phase = "cancel" // admission rolled back (block retry or abort)
)

// Event is one audit record.
type Event struct {
	Seq        uint64    `json:"seq"`
	Time       time.Time `json:"time"`
	Component  string    `json:"component"`
	Method     string    `json:"method"`
	Invocation uint64    `json:"invocation"`
	Phase      Phase     `json:"phase"`
	Principal  string    `json:"principal,omitempty"`
	Err        string    `json:"err,omitempty"`
}

// Trail is a bounded, concurrency-safe audit log.
type Trail struct {
	mu     sync.Mutex
	ring   []Event
	next   int // next write position
	filled bool
	seq    uint64
	sink   io.Writer
	now    func() time.Time
	drops  uint64 // sink write failures
}

// TrailOption configures NewTrail.
type TrailOption func(*Trail)

// WithSink streams each event to w as a JSON line, in addition to the ring.
func WithSink(w io.Writer) TrailOption {
	return func(t *Trail) { t.sink = w }
}

// WithClock overrides the event clock (tests).
func WithClock(now func() time.Time) TrailOption {
	return func(t *Trail) { t.now = now }
}

// NewTrail creates a trail retaining the last capacity events.
func NewTrail(capacity int, opts ...TrailOption) (*Trail, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("audit: trail capacity %d must be positive", capacity)
	}
	t := &Trail{
		ring: make([]Event, capacity),
		now:  time.Now,
	}
	for _, opt := range opts {
		opt(t)
	}
	return t, nil
}

// record appends one event.
func (t *Trail) record(inv *aspect.Invocation, phase Phase) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e := Event{
		Seq:        t.seq,
		Time:       t.now(),
		Component:  inv.Component(),
		Method:     inv.Method(),
		Invocation: inv.ID(),
		Phase:      phase,
	}
	if p := auth.PrincipalOf(inv); p != nil {
		e.Principal = p.Name
	}
	if phase == PhasePost && inv.Err() != nil {
		e.Err = inv.Err().Error()
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	if t.sink != nil {
		if b, err := json.Marshal(e); err == nil {
			if _, werr := t.sink.Write(append(b, '\n')); werr != nil {
				t.drops++
			}
		} else {
			t.drops++
		}
	}
}

// Aspect returns the audit aspect for registration. Many methods and
// components may share one trail.
func (t *Trail) Aspect(name string) aspect.Aspect {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindAudit,
		// The trail carries its own mutex (it spans components), so the
		// aspect needs no admission lock and never blocks.
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			t.record(inv, PhasePre)
			return aspect.Resume
		},
		Post:     func(inv *aspect.Invocation) { t.record(inv, PhasePost) },
		CancelFn: func(inv *aspect.Invocation) { t.record(inv, PhaseCancel) },
	}
}

// Events returns the retained events, oldest first.
func (t *Trail) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len returns the number of retained events.
func (t *Trail) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// Seq returns the total number of events ever recorded.
func (t *Trail) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Drops returns the number of events the sink failed to persist.
func (t *Trail) Drops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Reset clears the retained events (the total sequence keeps counting).
func (t *Trail) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = 0
	t.filled = false
}
