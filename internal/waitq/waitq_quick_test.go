package waitq

import (
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// policyModel computes the expected wake order for a set of waiters
// described by (priority, ticket) pairs.
func policyModel(policy Policy, prios []int) []int {
	remaining := make([]int, len(prios)) // indices
	for i := range remaining {
		remaining[i] = i
	}
	var order []int
	for len(remaining) > 0 {
		best := 0
		for k := 1; k < len(remaining); k++ {
			i, b := remaining[k], remaining[best]
			switch policy {
			case LIFO:
				if i > b { // larger ticket == later arrival
					best = k
				}
			case Priority:
				if prios[i] > prios[b] || (prios[i] == prios[b] && i < b) {
					best = k
				}
			default: // FIFO
				if i < b {
					best = k
				}
			}
		}
		order = append(order, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return order
}

// TestWakeOrderMatchesModelProperty parks random waiter sets and checks
// that successive Notify calls release them exactly in the order an
// independent model predicts, for every policy.
func TestWakeOrderMatchesModelProperty(t *testing.T) {
	run := func(policy Policy, rawPrios []uint8) bool {
		n := len(rawPrios)
		if n == 0 {
			return true
		}
		if n > 6 {
			rawPrios = rawPrios[:6]
			n = 6
		}
		prios := make([]int, n)
		for i, p := range rawPrios {
			prios[i] = int(p % 4)
		}
		var mu sync.Mutex
		q := New("q", policy, &mu)
		released := make(chan int, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			started := make(chan struct{})
			go func(i int) {
				defer wg.Done()
				mu.Lock()
				close(started)
				// Ticket == arrival index: tests control arrival order.
				err := q.Wait(context.Background(), prios[i], uint64(i+1))
				mu.Unlock()
				if err == nil {
					released <- i
				}
			}(i)
			<-started
			// The waiter enqueues under mu before unlocking inside Wait;
			// poll Len to confirm it parked before admitting the next.
			deadline := time.Now().Add(5 * time.Second)
			for {
				mu.Lock()
				l := q.Len()
				mu.Unlock()
				if l == i+1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("waiter %d never parked", i)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
		want := policyModel(policy, prios)
		for k := 0; k < n; k++ {
			mu.Lock()
			q.Notify()
			mu.Unlock()
			select {
			case got := <-released:
				if got != want[k] {
					t.Logf("policy %v prios %v: wake %d = waiter %d, want %d",
						policy, prios, k, got, want[k])
					// Release the still-parked waiters before reporting.
					mu.Lock()
					q.Broadcast()
					mu.Unlock()
					wg.Wait()
					return false
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("wake %d never happened", k)
			}
		}
		wg.Wait()
		return true
	}
	for _, policy := range []Policy{FIFO, LIFO, Priority} {
		policy := policy
		f := func(rawPrios []uint8) bool { return run(policy, rawPrios) }
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("policy %v: %v", policy, err)
		}
	}
}
