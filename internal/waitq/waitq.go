// Package waitq implements the wait queues of the Aspect Moderator
// framework: when an aspect's precondition returns Block, the calling
// goroutine parks on the queue of the participating method until a
// post-activation phase notifies it (the paper's per-method waiting queues
// built on Java's wait/notify).
//
// Unlike sync.Cond, a Queue supports pluggable wake policies (FIFO ticket
// fairness, LIFO, priority) and context-aware waits, which the paper's
// Figure 11 models as an interrupted wait aborting the invocation.
//
// A Queue is bound at construction to the external mutex that guards the
// moderator's admission state; Wait, Notify, Broadcast and Len must be
// called with that mutex held. Wait releases the mutex while parked and
// reacquires it before returning, exactly like sync.Cond.Wait.
//
// The moderator's optimistic admission path relies on an
// enqueue-before-unlock invariant: a parking caller is registered in the
// moderator's global waiter count before any lock that serializes guard
// state (the domain mutex or its guard cell) is released, and only then
// does Wait release the mutex. A lock-free admission that observes zero
// waiters under the guard cell can therefore safely skip wake fan-out:
// no caller can be parked-but-uncounted at that point.
package waitq

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Policy selects which blocked caller a Notify wakes.
type Policy int

const (
	// FIFO wakes the longest-waiting caller (ticket order). This is the
	// fairness default.
	FIFO Policy = iota + 1
	// LIFO wakes the most recently blocked caller.
	LIFO
	// Priority wakes the caller with the highest priority; ties break in
	// FIFO order.
	Priority
)

// String returns the policy's name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case Priority:
		return "priority"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Valid reports whether p is a defined policy.
func (p Policy) Valid() bool { return p == FIFO || p == LIFO || p == Priority }

// Stats are cumulative counters for one queue. All fields are safe to read
// concurrently.
type Stats struct {
	Waits      uint64 // callers that parked at least once
	Notifies   uint64 // single wake-ups delivered
	Broadcasts uint64 // broadcast operations performed
	Cancels    uint64 // waits abandoned due to context cancellation
}

type waiter struct {
	ch       chan struct{}
	priority int
	ticket   uint64
	signaled bool
}

// Queue is a named wait queue with a wake policy. The zero value is not
// usable; construct with New.
type Queue struct {
	name   string
	policy Policy
	mu     *sync.Mutex // external admission mutex; guards waiters

	waiters []*waiter

	waits      atomic.Uint64
	notifies   atomic.Uint64
	broadcasts atomic.Uint64
	cancels    atomic.Uint64
}

// New creates a queue bound to the external mutex mu. An invalid policy
// defaults to FIFO.
func New(name string, policy Policy, mu *sync.Mutex) *Queue {
	if !policy.Valid() {
		policy = FIFO
	}
	return &Queue{name: name, policy: policy, mu: mu}
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Policy returns the queue's wake policy.
func (q *Queue) Policy() Policy { return q.policy }

// Len returns the number of parked callers. The bound mutex must be held.
func (q *Queue) Len() int { return len(q.waiters) }

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Waits:      q.waits.Load(),
		Notifies:   q.notifies.Load(),
		Broadcasts: q.broadcasts.Load(),
		Cancels:    q.cancels.Load(),
	}
}

// Wait parks the calling goroutine until a Notify or Broadcast selects it,
// or until ctx is cancelled. The bound mutex must be held on entry; it is
// released while parked and reacquired before Wait returns. A non-nil
// return means the wait was abandoned (context cancellation) and carries
// the context's error.
//
// The ticket orders FIFO/LIFO wake-ups (and breaks priority ties). Callers
// supply it so that an invocation that re-parks after a failed guard
// re-evaluation keeps its original arrival position — the moderator issues
// one sticky ticket per invocation.
//
// As with condition variables, a normal return does not guarantee the
// guarded condition holds: callers must re-evaluate it in a loop.
func (q *Queue) Wait(ctx context.Context, priority int, ticket uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := &waiter{
		ch:       make(chan struct{}),
		priority: priority,
		ticket:   ticket,
	}
	q.waiters = append(q.waiters, w)
	q.waits.Add(1)

	q.mu.Unlock()
	select {
	case <-w.ch:
		q.mu.Lock()
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.signaled {
			// A notification raced with our cancellation: the wake-up
			// was consumed by us but we are abandoning, so pass it on
			// to another waiter rather than losing it.
			q.notifyLocked()
		} else {
			q.removeLocked(w)
		}
		q.cancels.Add(1)
		return ctx.Err()
	}
}

// Notify wakes one parked caller, chosen by the queue's policy. It is a
// no-op on an empty queue. The bound mutex must be held.
func (q *Queue) Notify() {
	if q.notifyLocked() {
		q.notifies.Add(1)
	}
}

// NotifyN wakes up to n parked callers, each chosen by the queue's
// policy, and returns how many were woken. It is the batch-wake primitive
// of the moderator's coalesced fan-out: n completions that would each
// have issued one Notify under their own mutex acquisition issue a single
// NotifyN under one — same wake count, one pass. The bound mutex must be
// held.
func (q *Queue) NotifyN(n int) int {
	woken := 0
	for ; woken < n; woken++ {
		if !q.notifyLocked() {
			break
		}
	}
	q.notifies.Add(uint64(woken))
	return woken
}

// Broadcast wakes every parked caller. The bound mutex must be held.
func (q *Queue) Broadcast() {
	if len(q.waiters) == 0 {
		return
	}
	for _, w := range q.waiters {
		w.signaled = true
		close(w.ch)
	}
	q.waiters = q.waiters[:0]
	q.broadcasts.Add(1)
}

// notifyLocked selects and signals one waiter per policy. It reports
// whether a waiter was woken.
func (q *Queue) notifyLocked() bool {
	if len(q.waiters) == 0 {
		return false
	}
	idx := q.selectLocked()
	w := q.waiters[idx]
	q.waiters = append(q.waiters[:idx], q.waiters[idx+1:]...)
	w.signaled = true
	close(w.ch)
	return true
}

// selectLocked returns the index of the waiter the policy picks.
func (q *Queue) selectLocked() int {
	best := 0
	switch q.policy {
	case LIFO:
		for i := 1; i < len(q.waiters); i++ {
			if q.waiters[i].ticket > q.waiters[best].ticket {
				best = i
			}
		}
	case Priority:
		for i := 1; i < len(q.waiters); i++ {
			w, b := q.waiters[i], q.waiters[best]
			if w.priority > b.priority ||
				(w.priority == b.priority && w.ticket < b.ticket) {
				best = i
			}
		}
	default: // FIFO
		for i := 1; i < len(q.waiters); i++ {
			if q.waiters[i].ticket < q.waiters[best].ticket {
				best = i
			}
		}
	}
	return best
}

func (q *Queue) removeLocked(target *waiter) {
	for i, w := range q.waiters {
		if w == target {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}
