package waitq

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var ticketSeq atomic.Uint64

// startWaiter parks a goroutine on q (with the next arrival ticket) and
// returns a channel that yields the wait's result when it returns.
func startWaiter(q *Queue, mu *sync.Mutex, ctx context.Context, prio int) <-chan error {
	done := make(chan error, 1)
	ready := make(chan struct{})
	ticket := ticketSeq.Add(1)
	go func() {
		mu.Lock()
		close(ready)
		err := q.Wait(ctx, prio, ticket)
		mu.Unlock()
		done <- err
	}()
	<-ready
	return done
}

// waitForLen spins until the queue holds n waiters (waiters enqueue under
// the lock before parking, so observing Len==n means all have parked or
// are about to park holding their tickets in order of arrival... arrival
// order is what tests control via sequential startWaiter calls).
func waitForLen(t *testing.T, q *Queue, mu *sync.Mutex, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		l := q.Len()
		mu.Unlock()
		if l == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (at %d)", n, l)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{FIFO: "fifo", LIFO: "lifo", Priority: "priority", Policy(9): "policy(9)"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestInvalidPolicyDefaultsToFIFO(t *testing.T) {
	var mu sync.Mutex
	q := New("q", Policy(77), &mu)
	if q.Policy() != FIFO {
		t.Fatalf("policy = %v, want FIFO", q.Policy())
	}
}

func TestNotifyWakesOne(t *testing.T) {
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	d1 := startWaiter(q, &mu, context.Background(), 0)
	waitForLen(t, q, &mu, 1)

	mu.Lock()
	q.Notify()
	mu.Unlock()

	if err := <-d1; err != nil {
		t.Fatalf("woken waiter returned %v", err)
	}
	if got := q.Stats(); got.Notifies != 1 || got.Waits != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestNotifyOnEmptyQueueIsNoop(t *testing.T) {
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	mu.Lock()
	q.Notify()
	q.Broadcast()
	mu.Unlock()
	if s := q.Stats(); s.Notifies != 0 || s.Broadcasts != 0 {
		t.Errorf("empty notify/broadcast counted: %+v", s)
	}
}

func TestFIFOOrder(t *testing.T) {
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	var dones []<-chan error
	for i := 0; i < 3; i++ {
		dones = append(dones, startWaiter(q, &mu, context.Background(), 0))
		waitForLen(t, q, &mu, i+1)
	}
	// Wake one at a time; FIFO must release in arrival order.
	for i := 0; i < 3; i++ {
		mu.Lock()
		q.Notify()
		mu.Unlock()
		select {
		case err := <-dones[i]:
			if err != nil {
				t.Fatalf("waiter %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d not woken in FIFO order", i)
		}
		// Later waiters must still be parked.
		for j := i + 1; j < 3; j++ {
			select {
			case <-dones[j]:
				t.Fatalf("waiter %d woke before its turn", j)
			default:
			}
		}
	}
}

func TestLIFOOrder(t *testing.T) {
	var mu sync.Mutex
	q := New("q", LIFO, &mu)
	var dones []<-chan error
	for i := 0; i < 3; i++ {
		dones = append(dones, startWaiter(q, &mu, context.Background(), 0))
		waitForLen(t, q, &mu, i+1)
	}
	for i := 2; i >= 0; i-- {
		mu.Lock()
		q.Notify()
		mu.Unlock()
		select {
		case err := <-dones[i]:
			if err != nil {
				t.Fatalf("waiter %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d not woken in LIFO order", i)
		}
	}
}

func TestPriorityOrderWithFIFOTieBreak(t *testing.T) {
	var mu sync.Mutex
	q := New("q", Priority, &mu)
	// Arrival order: prio 1, prio 5 (a), prio 5 (b), prio 3.
	prios := []int{1, 5, 5, 3}
	var dones []<-chan error
	for i, p := range prios {
		dones = append(dones, startWaiter(q, &mu, context.Background(), p))
		waitForLen(t, q, &mu, i+1)
	}
	// Expected wake order: index 1 (prio5 first-arrived), 2 (prio5), 3 (prio3), 0 (prio1).
	order := []int{1, 2, 3, 0}
	for _, idx := range order {
		mu.Lock()
		q.Notify()
		mu.Unlock()
		select {
		case err := <-dones[idx]:
			if err != nil {
				t.Fatalf("waiter %d: %v", idx, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d not woken in priority order", idx)
		}
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	var dones []<-chan error
	for i := 0; i < 5; i++ {
		dones = append(dones, startWaiter(q, &mu, context.Background(), 0))
	}
	waitForLen(t, q, &mu, 5)
	mu.Lock()
	q.Broadcast()
	if q.Len() != 0 {
		t.Errorf("queue not drained after broadcast: %d", q.Len())
	}
	mu.Unlock()
	for i, d := range dones {
		if err := <-d; err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
	if s := q.Stats(); s.Broadcasts != 1 || s.Waits != 5 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWaitCancelledBeforeParking(t *testing.T) {
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mu.Lock()
	err := q.Wait(ctx, 0, ticketSeq.Add(1))
	if q.Len() != 0 {
		t.Error("cancelled-before-park wait must not enqueue")
	}
	mu.Unlock()
	if err == nil {
		t.Fatal("want context error")
	}
}

func TestWaitCancelledWhileParked(t *testing.T) {
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	ctx, cancel := context.WithCancel(context.Background())
	done := startWaiter(q, &mu, ctx, 0)
	waitForLen(t, q, &mu, 1)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled wait must return an error")
	}
	mu.Lock()
	if q.Len() != 0 {
		t.Error("cancelled waiter must be removed from the queue")
	}
	mu.Unlock()
	if s := q.Stats(); s.Cancels != 1 {
		t.Errorf("cancels = %d, want 1", s.Cancels)
	}
}

func TestCancelRaceDoesNotLoseWakeup(t *testing.T) {
	// If a waiter is signalled and cancelled at nearly the same time and
	// abandons, the wake-up must be handed to another waiter.
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	ctx, cancel := context.WithCancel(context.Background())
	d1 := startWaiter(q, &mu, ctx, 0) // will be cancelled
	waitForLen(t, q, &mu, 1)
	d2 := startWaiter(q, &mu, context.Background(), 0) // must inherit the wake
	waitForLen(t, q, &mu, 2)

	// Signal waiter 1 while holding the lock so it cannot complete its
	// select before we also cancel: both channels become ready, and the
	// select may pick ctx.Done even though it was signalled.
	mu.Lock()
	q.Notify() // selects waiter 1 (FIFO)
	cancel()
	mu.Unlock()

	// Whichever branch waiter 1's select takes, exactly one of the two
	// outcomes must hold: waiter 1 consumed the wake (d1 nil error), or it
	// abandoned and waiter 2 was woken instead.
	select {
	case err := <-d1:
		if err != nil {
			// Abandoned: the wake must have been passed to waiter 2.
			select {
			case err2 := <-d2:
				if err2 != nil {
					t.Fatalf("re-notified waiter got %v", err2)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("wake-up lost after cancel race")
			}
		} else {
			// Waiter 1 consumed the wake; waiter 2 stays parked.
			select {
			case <-d2:
				t.Fatal("waiter 2 woke without a notify")
			case <-time.After(50 * time.Millisecond):
			}
			mu.Lock()
			q.Broadcast() // release waiter 2 for cleanup
			mu.Unlock()
			<-d2
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter 1 never returned")
	}
}

func TestManyWaitersManyNotifiesConcurrent(t *testing.T) {
	// Stress: N waiters, N notifies from a separate goroutine; all waiters
	// must eventually return without error and the queue must drain.
	const n = 64
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticket := ticketSeq.Add(1)
			mu.Lock()
			err := q.Wait(context.Background(), 0, ticket)
			mu.Unlock()
			errs <- err
		}()
	}
	waitForLen(t, q, &mu, n)
	for i := 0; i < n; i++ {
		mu.Lock()
		q.Notify()
		mu.Unlock()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("waiter error: %v", err)
		}
	}
	mu.Lock()
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d", q.Len())
	}
	mu.Unlock()
}

func TestSpuriousConditionLoopPattern(t *testing.T) {
	// Demonstrates (and pins) the contract that Wait returns with the lock
	// held so a guard can be re-checked in a loop, as the moderator does.
	var mu sync.Mutex
	q := New("q", FIFO, &mu)
	ready := false
	got := make(chan struct{})
	go func() {
		ticket := ticketSeq.Add(1)
		mu.Lock()
		for !ready {
			if err := q.Wait(context.Background(), 0, ticket); err != nil {
				t.Errorf("wait: %v", err)
				break
			}
		}
		mu.Unlock()
		close(got)
	}()
	waitForLen(t, q, &mu, 1)
	// A wake-up without the condition: consumer must loop and re-park.
	mu.Lock()
	q.Notify()
	mu.Unlock()
	waitForLen(t, q, &mu, 1)
	select {
	case <-got:
		t.Fatal("consumer proceeded without the condition")
	default:
	}
	mu.Lock()
	ready = true
	q.Notify()
	mu.Unlock()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never proceeded")
	}
}
