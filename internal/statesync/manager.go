package statesync

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/view"
	"repro/internal/naming"
)

// ErrStaleTerm aliases the plane's fencing sentinel: a replication offer
// stamped with an outdated leadership term is refused with it, exactly
// like stale wakes and stale forwarded admissions.
var ErrStaleTerm = naming.ErrStaleTerm

// Offer is one replication message from a domain's leader to its
// successor: an optional state snapshot (covering every effect up to
// SnapSeq) and a batch of contiguous log entries. From names the sender,
// Term fences the whole offer at the sender's lease term.
type Offer struct {
	From     string  `json:"from"`
	Domain   string  `json:"domain"`
	Term     uint64  `json:"term"`
	Snapshot []byte  `json:"snapshot,omitempty"`
	SnapSeq  uint64  `json:"snap_seq,omitempty"`
	Entries  []Entry `json:"entries,omitempty"`
}

// Ack is the successor's reply: the acknowledged high-water mark. The
// sender reclaims log entries at or below it.
type Ack struct {
	Acked uint64 `json:"acked"`
}

// Transport ships offers to a successor node. The plane implements it
// over its pooled amrpc control connections; tests use in-process fakes.
type Transport interface {
	Offer(ctx context.Context, successor string, o Offer) (Ack, error)
}

// Config configures a Manager.
type Config struct {
	// Node is this node's cluster identity (required).
	Node string
	// Transport ships offers (required).
	Transport Transport
	// Snapshot, when set, serializes one domain's full functional state.
	// It unlocks the snapshot-on-graceful-release path and snapshot
	// resync after a log overflow; without it the manager replicates the
	// effect log only.
	Snapshot func(domain string) ([]byte, error)
	// Capacity is the per-domain log capacity in entries (default 8192).
	// It bounds replication lag: appends past an unacknowledged window of
	// this size are refused and counted.
	Capacity int
	// Batch caps entries per offer (default 256).
	Batch int
	// Interval paces the background streamer when idle (default 25ms);
	// fresh appends kick it immediately.
	Interval time.Duration
	// OfferTimeout bounds one offer round trip (default 2s).
	OfferTimeout time.Duration
	// Logf, when set, receives one line per notable replication event.
	Logf func(format string, args ...any)
}

func (cfg *Config) withDefaults() error {
	if cfg.Node == "" {
		return fmt.Errorf("statesync: config: empty node")
	}
	if cfg.Transport == nil {
		return fmt.Errorf("statesync: config: nil transport")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8192
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 25 * time.Millisecond
	}
	if cfg.OfferTimeout <= 0 {
		cfg.OfferTimeout = 2 * time.Second
	}
	return nil
}

// stream is the leader side of one domain: its effect log plus streaming
// position and successor.
type stream struct {
	log  *Log
	term uint64

	// flushMu serializes flushOne between the background streamLoop and a
	// synchronous Handoff. Log.ReadFrom/Ack are single-reader: two
	// concurrent flushers could advance acked under each other's stale
	// read position and ship a torn or stale entry.
	flushMu sync.Mutex
	stalls  int // consecutive flush rounds stalled at a log hole (under flushMu)

	mu        sync.Mutex
	succ      string
	needSnap  bool // successor changed (or gap with a snapshot available): resend the baseline
	staleStop bool // the successor refused our term: we are a zombie leader, stop streaming
	streamed  uint64
	snapsSent uint64
	offerErrs uint64
}

// replica is the successor side of one domain: the received snapshot and
// contiguous entry suffix, fenced at the highest term seen.
type replica struct {
	mu       sync.Mutex
	from     string
	term     uint64
	snap     []byte
	snapSeq  uint64
	entries  []Entry
	lastSeq  uint64
	snapsIn  uint64
	dups     uint64
	gaps     uint64
	refusals uint64
}

// catchup records what a takeover consumed from a replica (for the
// introspection view).
type catchup struct {
	restored bool
	applied  int
	gaps     uint64
}

// Manager runs both sides of effect replication for one node: it captures
// completions into per-domain logs, streams them to ring successors, and
// holds replicas received from the domains this node stands successor for.
type Manager struct {
	cfg Config

	// streams is the atomically published leader table, so Capture — the
	// completion-hook path — costs one atomic load and a map lookup, no
	// lock (the tracerBox discipline, applied to replication).
	streams atomic.Pointer[map[string]*stream]

	mu       sync.Mutex
	replicas map[string]*replica
	catchups map[string]catchup
	closed   bool

	paused atomic.Bool // test/chaos hook: freeze outbound streaming (a wedged node)

	notify chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewManager creates and starts a manager; Close stops its streamer.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		replicas: make(map[string]*replica, 4),
		catchups: make(map[string]catchup, 4),
		notify:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	empty := map[string]*stream{}
	m.streams.Store(&empty)
	m.wg.Add(1)
	go m.streamLoop()
	return m, nil
}

// Close stops the background streamer.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.stop)
	m.mu.Unlock()
	m.wg.Wait()
}

// Pause freezes (or resumes) outbound streaming — the chaos hook that
// makes a wedged node stop replicating along with its heartbeat.
func (m *Manager) Pause(p bool) { m.paused.Store(p) }

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// publishStreams republishes the leader table with mutate applied.
// Callers hold m.mu.
func (m *Manager) publishStreams(mutate func(map[string]*stream)) {
	old := *m.streams.Load()
	fresh := make(map[string]*stream, len(old)+1)
	for d, s := range old {
		fresh[d] = s
	}
	mutate(fresh)
	m.streams.Store(&fresh)
}

// Lead begins capturing and streaming effects for domain at term, with a
// fresh log (a new leadership starts a new sequence). Leading the same
// domain at an unchanged term is a no-op: the lease was re-acquired
// without ever expiring (e.g. after a transient renew failure), so the
// live log — and the successor replica tracking its sequence — stay
// valid; restarting the sequence at 1 would make every new entry look
// like a duplicate downstream.
func (m *Manager) Lead(domain string, term uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := (*m.streams.Load())[domain]; s != nil && s.term == term {
		return
	}
	m.publishStreams(func(tab map[string]*stream) {
		tab[domain] = &stream{log: NewLog(domain, m.cfg.Capacity), term: term}
	})
}

// Leading reports whether this node is capturing effects for domain, and
// at which term.
func (m *Manager) Leading(domain string) (uint64, bool) {
	if s := (*m.streams.Load())[domain]; s != nil {
		return s.term, true
	}
	return 0, false
}

// Release stops leading domain (lease lost or handed over).
func (m *Manager) Release(domain string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.publishStreams(func(tab map[string]*stream) { delete(tab, domain) })
}

// SetSuccessor points domain's stream at its current ring successor. A
// successor change schedules a fresh snapshot baseline when the
// application provides one (the new successor missed the reclaimed
// prefix).
func (m *Manager) SetSuccessor(domain, succ string) {
	s := (*m.streams.Load())[domain]
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.succ != succ {
		if s.succ != "" && m.cfg.Snapshot != nil {
			s.needSnap = true
		}
		s.succ = succ
		s.staleStop = false
	}
	s.mu.Unlock()
}

// RequireSnapshot schedules a fresh snapshot baseline for domain's next
// offer, when the application provides one. The plane calls it after a
// takeover that restored a snapshot: the restored state is not in the new
// leader's (fresh) log, so its own successor needs a snapshot to be able
// to resume it in turn.
func (m *Manager) RequireSnapshot(domain string) {
	s := (*m.streams.Load())[domain]
	if s == nil || m.cfg.Snapshot == nil {
		return
	}
	s.mu.Lock()
	s.needSnap = true
	s.mu.Unlock()
}

// Capture appends one completed effect to domain's log, if this node
// leads it. Lock-free: one atomic load, one map lookup, one ring append.
// The args slice is retained; callers must not mutate it afterwards.
func (m *Manager) Capture(domain, method string, args []any) {
	s := (*m.streams.Load())[domain]
	if s == nil {
		return
	}
	if _, ok := s.log.Append(s.term, method, args); !ok {
		m.logf("statesync %s: domain %s: effect log overflow (lag bound hit)", m.cfg.Node, domain)
	}
	// Kick the streamer only once a batch's worth is pending. A per-append
	// wake would cost a goroutine switch per completion — on the trickle
	// case the ticker bounds staleness at Interval instead, and Handoff
	// flushes synchronously, so eager wakes buy nothing but overhead.
	if s.log.Pending() >= uint64(m.cfg.Batch) {
		select {
		case m.notify <- struct{}{}:
		default:
		}
	}
}

// Seq returns domain's last captured sequence number (0 when not leading).
func (m *Manager) Seq(domain string) uint64 {
	if s := (*m.streams.Load())[domain]; s != nil {
		return s.log.LastSeq()
	}
	return 0
}

func (m *Manager) streamLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		case <-m.notify:
		}
		if m.paused.Load() {
			continue
		}
		tab := *m.streams.Load()
		for domain, s := range tab {
			select {
			case <-m.stop:
				return
			default:
			}
			_ = m.flushOne(domain, s, false)
		}
	}
}

// flushOne sends one offer for domain when there is anything pending (or
// force). It returns the first error; transport failures are counted and
// retried by the next round. Serialized per stream: the background
// streamLoop and a synchronous Handoff may both flush the same domain,
// and the log's read side is single-reader.
func (m *Manager) flushOne(domain string, s *stream, force bool) error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	succ := s.succ
	needSnap := s.needSnap || (s.log.Gapped() && m.cfg.Snapshot != nil)
	stale := s.staleStop
	s.mu.Unlock()
	if succ == "" || stale {
		return nil
	}

	offer := Offer{From: m.cfg.Node, Domain: domain, Term: s.term}
	if needSnap && m.cfg.Snapshot != nil {
		// The sequence mark is read BEFORE serializing, so the snapshot
		// covers at least every effect at or below it. Effects completing
		// during serialization may also land in the snapshot; replaying
		// them again on takeover is harmless for effects that are
		// idempotent by id (the plane's existing redelivery contract), and
		// the graceful-release path drains in-flight work first so its
		// snapshots are exact.
		mark := s.log.LastSeq()
		data, err := m.cfg.Snapshot(domain)
		if err != nil {
			s.mu.Lock()
			s.offerErrs++
			s.mu.Unlock()
			return fmt.Errorf("statesync %s: snapshot %s: %w", m.cfg.Node, domain, err)
		}
		offer.Snapshot = data
		offer.SnapSeq = mark
	}
	from := s.log.Acked()
	if offer.SnapSeq > from {
		from = offer.SnapSeq
	}
	offer.Entries = s.log.ReadFrom(from, m.cfg.Batch)
	if offer.Snapshot == nil && len(offer.Entries) == 0 && s.log.Gapped() &&
		s.log.Pending() > 0 && m.cfg.Snapshot == nil {
		// Stalled at a hole left by a refused append, with no snapshot to
		// escalate to. Give a concurrent in-flight append one round to
		// publish its slot, then abandon the lost range: the receiver
		// surfaces the sequence gap (HandleOffer counts it and restarts
		// the suffix), instead of replication wedging for the rest of the
		// term and every later append overflowing in turn.
		if s.stalls++; s.stalls > 1 {
			s.stalls = 0
			if n := s.log.SkipGap(); n > 0 {
				m.logf("statesync %s: domain %s: abandoned %d unreplicated effects (overflow, no snapshot hook)",
					m.cfg.Node, domain, n)
				offer.Entries = s.log.ReadFrom(s.log.Acked(), m.cfg.Batch)
			}
		}
	} else {
		s.stalls = 0
	}
	if offer.Snapshot == nil && len(offer.Entries) == 0 && !force {
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.OfferTimeout)
	ack, err := m.cfg.Transport.Offer(ctx, succ, offer)
	cancel()
	if err != nil {
		s.mu.Lock()
		if errors.Is(err, ErrStaleTerm) {
			// The successor has seen a higher term: we are a zombie leader.
			// Stop streaming; the lease machinery will retire us.
			s.staleStop = true
			m.logf("statesync %s: domain %s: successor %s refused term %d, stopping stream",
				m.cfg.Node, domain, succ, s.term)
		} else {
			s.offerErrs++
		}
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	if offer.Snapshot != nil {
		s.needSnap = false
		s.snapsSent++
		s.log.Resync(offer.SnapSeq)
	}
	s.streamed += uint64(len(offer.Entries))
	s.mu.Unlock()
	l := s.log
	if ack.Acked > 0 {
		l.Ack(ack.Acked)
	}
	return nil
}

// Handoff synchronously drains domain's log to succ for a graceful
// release: it retargets the stream, forces a snapshot baseline when one
// is available, and flushes until nothing is pending. It returns the
// final handed-over sequence number — the lease release's snapshot
// barrier. The caller must have stopped admitting new effects first.
func (m *Manager) Handoff(ctx context.Context, domain, succ string) (uint64, error) {
	s := (*m.streams.Load())[domain]
	if s == nil {
		return 0, nil
	}
	s.mu.Lock()
	s.succ = succ
	s.staleStop = false
	if m.cfg.Snapshot != nil {
		s.needSnap = true
	}
	s.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return s.log.LastSeq(), err
		}
		if err := m.flushOne(domain, s, attempt == 0); err != nil {
			if errors.Is(err, ErrStaleTerm) {
				return s.log.LastSeq(), err
			}
			if attempt >= 3 {
				return s.log.LastSeq(), err
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if s.log.Pending() == 0 {
			return s.log.LastSeq(), nil
		}
	}
}

// HandleOffer ingests one replication offer on the successor side. Offers
// fenced at a term below the replica's recorded term — or below a term
// this node itself leads the domain at — are refused with ErrStaleTerm;
// duplicate entries are dropped idempotently. The returned Ack carries
// the contiguous high-water mark now held here.
func (m *Manager) HandleOffer(o Offer) (Ack, error) {
	if s := (*m.streams.Load())[o.Domain]; s != nil && s.term >= o.Term {
		m.mu.Lock()
		r := m.replicaFor(o.Domain)
		m.mu.Unlock()
		r.mu.Lock()
		r.refusals++
		r.mu.Unlock()
		return Ack{}, fmt.Errorf("statesync %s: offer for %s at term %d, but leading at term %d: %w",
			m.cfg.Node, o.Domain, o.Term, s.term, ErrStaleTerm)
	}
	m.mu.Lock()
	r := m.replicaFor(o.Domain)
	m.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	if o.Term < r.term {
		r.refusals++
		return Ack{}, fmt.Errorf("statesync %s: offer for %s at stale term %d (replica at %d): %w",
			m.cfg.Node, o.Domain, o.Term, r.term, ErrStaleTerm)
	}
	if o.Term > r.term {
		// A new leadership generation: its sequence starts over, so the
		// old replica contents are superseded wholesale.
		r.term, r.snap, r.snapSeq, r.entries, r.lastSeq = o.Term, nil, 0, nil, 0
	}
	r.from = o.From
	if o.Snapshot != nil {
		r.snap, r.snapSeq = o.Snapshot, o.SnapSeq
		r.snapsIn++
		kept := r.entries[:0]
		for _, e := range r.entries {
			if e.Seq > o.SnapSeq {
				kept = append(kept, e)
			}
		}
		r.entries = kept
		if r.lastSeq < o.SnapSeq {
			r.lastSeq = o.SnapSeq
		}
	}
	for _, e := range o.Entries {
		switch {
		case e.Seq <= r.lastSeq:
			r.dups++
		case e.Seq == r.lastSeq+1 || r.lastSeq == 0:
			if e.Seq != r.lastSeq+1 {
				r.gaps++ // adopting a mid-stream baseline (no snapshot path)
			}
			r.entries = append(r.entries, e)
			r.lastSeq = e.Seq
		default:
			// A hole (sender overflowed without a snapshot): keep what we
			// have, record the gap, and continue from the new position so
			// the suffix stays fresh.
			r.gaps++
			r.entries = append(r.entries, e)
			r.lastSeq = e.Seq
		}
	}
	ack := r.lastSeq
	if r.snapSeq > ack {
		ack = r.snapSeq
	}
	return Ack{Acked: ack}, nil
}

func (m *Manager) replicaFor(domain string) *replica {
	r, ok := m.replicas[domain]
	if !ok {
		r = &replica{}
		m.replicas[domain] = r
	}
	return r
}

// TakeoverState is everything a replica held for a domain at takeover:
// the latest snapshot (if any), the entry suffix past it, and the
// leadership term it was fenced at.
type TakeoverState struct {
	From     string
	Term     uint64
	Snapshot []byte
	SnapSeq  uint64
	Entries  []Entry
	Gaps     uint64
}

// Takeover consumes and returns domain's replica for catch-up. The second
// result reports whether any replicated state was held.
func (m *Manager) Takeover(domain string) (TakeoverState, bool) {
	m.mu.Lock()
	r, ok := m.replicas[domain]
	if ok {
		delete(m.replicas, domain)
	}
	m.mu.Unlock()
	if !ok {
		return TakeoverState{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := TakeoverState{
		From: r.from, Term: r.term, Snapshot: r.snap, SnapSeq: r.snapSeq,
		Entries: append([]Entry(nil), r.entries...), Gaps: r.gaps,
	}
	return st, r.snap != nil || len(st.Entries) > 0
}

// NoteCatchup records what a takeover applied, for the introspection view.
func (m *Manager) NoteCatchup(domain string, restored bool, applied int, gaps uint64) {
	m.mu.Lock()
	c := m.catchups[domain]
	if restored {
		c.restored = true
	}
	c.applied += applied
	c.gaps += gaps
	m.catchups[domain] = c
	m.mu.Unlock()
}

// Status reports per-domain replication state — the leader side's lag and
// stream counters, the replica side's held suffix — sorted by domain.
func (m *Manager) Status() []view.SyncStatus {
	byDomain := make(map[string]*view.SyncStatus, 8)
	get := func(domain string) *view.SyncStatus {
		st, ok := byDomain[domain]
		if !ok {
			st = &view.SyncStatus{Domain: domain}
			byDomain[domain] = st
		}
		return st
	}
	for domain, s := range *m.streams.Load() {
		st := get(domain)
		s.mu.Lock()
		st.Leading = true
		st.Term = s.term
		st.Successor = s.succ
		st.LastSeq = s.log.LastSeq()
		st.AckedSeq = s.log.Acked()
		st.Lag = st.LastSeq - st.AckedSeq
		st.Streamed = s.streamed
		st.SnapshotsSent = s.snapsSent
		st.OfferErrors = s.offerErrs
		st.Overflows = s.log.Overflows()
		st.Skipped = s.log.Skipped()
		s.mu.Unlock()
	}
	m.mu.Lock()
	for domain, r := range m.replicas {
		st := get(domain)
		r.mu.Lock()
		st.ReplicaFrom = r.from
		st.ReplicaTerm = r.term
		st.ReplicaSeq = r.lastSeq
		st.ReplicaEntries = len(r.entries)
		st.SnapshotsRecv = r.snapsIn
		st.StaleRefused = r.refusals
		st.Duplicates = r.dups
		st.Gaps = r.gaps
		r.mu.Unlock()
	}
	for domain, c := range m.catchups {
		st := get(domain)
		st.CatchupApplied = uint64(c.applied)
		st.CatchupGaps = c.gaps
		st.Restored = c.restored
	}
	m.mu.Unlock()
	out := make([]view.SyncStatus, 0, len(byDomain))
	for _, st := range byDomain {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}
