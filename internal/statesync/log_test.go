package statesync

import (
	"fmt"
	"sync"
	"testing"
)

func TestLogAppendReadAck(t *testing.T) {
	l := NewLog("alpha", 16)
	for i := 1; i <= 5; i++ {
		seq, ok := l.Append(3, "put", []any{fmt.Sprintf("id-%d", i)})
		if !ok || seq != uint64(i) {
			t.Fatalf("append %d: seq=%d ok=%v", i, seq, ok)
		}
	}
	got := l.ReadFrom(0, 100)
	if len(got) != 5 {
		t.Fatalf("read %d entries, want 5", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) || e.Term != 3 || e.Method != "put" || e.Domain != "alpha" {
			t.Fatalf("entry %d malformed: %+v", i, e)
		}
	}
	l.Ack(3)
	if p := l.Pending(); p != 2 {
		t.Fatalf("pending %d after ack 3, want 2", p)
	}
	if got := l.ReadFrom(l.Acked(), 100); len(got) != 2 || got[0].Seq != 4 {
		t.Fatalf("read after ack: %+v", got)
	}
	// Ack is monotone: an older ack cannot move the mark back.
	l.Ack(1)
	if a := l.Acked(); a != 3 {
		t.Fatalf("acked regressed to %d", a)
	}
}

func TestLogOverflowBoundsLag(t *testing.T) {
	l := NewLog("alpha", 16)
	for i := 0; i < l.Capacity(); i++ {
		if _, ok := l.Append(1, "put", nil); !ok {
			t.Fatalf("append %d refused below capacity", i)
		}
	}
	// The unacknowledged window is full: further appends are refused and
	// counted — replication lag is bounded by construction.
	if _, ok := l.Append(1, "put", nil); ok {
		t.Fatal("append accepted past an unacked full window")
	}
	if l.Overflows() != 1 || !l.Gapped() {
		t.Fatalf("overflow=%d gapped=%v, want 1/true", l.Overflows(), l.Gapped())
	}
	// A snapshot resync covers the hole and reopens the window.
	l.Resync(l.LastSeq())
	if l.Gapped() {
		t.Fatal("still gapped after resync")
	}
	if _, ok := l.Append(1, "put", nil); !ok {
		t.Fatal("append refused after resync reclaimed the window")
	}
}

// TestLogSkipGapResumesAfterOverflow pins the no-snapshot overflow
// remedy: a refused append consumes a sequence whose slot is never
// published, so the reader stalls at the hole — SkipGap abandons the lost
// range (counted) and streaming resumes at the next published entry
// instead of wedging for the rest of the term.
func TestLogSkipGapResumesAfterOverflow(t *testing.T) {
	l := NewLog("alpha", 16)
	for i := 0; i < l.Capacity(); i++ {
		if _, ok := l.Append(1, "put", nil); !ok {
			t.Fatalf("append %d refused below capacity", i)
		}
	}
	if _, ok := l.Append(1, "put", nil); ok { // seq 17: the hole
		t.Fatal("append accepted past a full window")
	}
	l.Ack(uint64(l.Capacity())) // successor caught up on the published prefix
	if _, ok := l.Append(1, "put", nil); !ok { // seq 18: window reopened
		t.Fatal("append refused after the window drained")
	}
	// The reader stalls at the never-published seq 17...
	if got := l.ReadFrom(l.Acked(), 100); len(got) != 0 {
		t.Fatalf("read %d entries across an unpublished hole", len(got))
	}
	// ...until SkipGap abandons it: streaming resumes at 18.
	if n := l.SkipGap(); n != 1 {
		t.Fatalf("skipped %d sequences, want 1", n)
	}
	if l.Gapped() || l.Skipped() != 1 {
		t.Fatalf("gapped=%v skipped=%d after skip", l.Gapped(), l.Skipped())
	}
	got := l.ReadFrom(l.Acked(), 100)
	if len(got) != 1 || got[0].Seq != 18 {
		t.Fatalf("read after skip: %+v", got)
	}
	l.Ack(got[0].Seq)
	if p := l.Pending(); p != 0 {
		t.Fatalf("pending %d after draining past the hole", p)
	}
}

func TestLogWrapWithAcks(t *testing.T) {
	l := NewLog("alpha", 16)
	// Acknowledge as we go: many times the capacity flows through.
	for i := 1; i <= 10*l.Capacity(); i++ {
		seq, ok := l.Append(2, "put", []any{i})
		if !ok {
			t.Fatalf("append %d refused with a drained window", i)
		}
		got := l.ReadFrom(l.Acked(), 100)
		if len(got) != 1 || got[0].Seq != seq {
			t.Fatalf("append %d: read %+v", i, got)
		}
		l.Ack(seq)
	}
	if l.Overflows() != 0 {
		t.Fatalf("overflows %d on a drained log", l.Overflows())
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	l := NewLog("alpha", 4096)
	const workers, per = 8, 256
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(1, "put", []any{w, i})
			}
		}(w)
	}
	wg.Wait()
	got := l.ReadFrom(0, workers*per+10)
	if len(got) != workers*per {
		t.Fatalf("read %d entries, want %d", len(got), workers*per)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d: sequence not dense", i, e.Seq)
		}
	}
}
