// Package statesync replicates a guarded component's effects between the
// nodes of the distributed admission plane so that a domain takeover
// resumes the *state*, not just the moderation.
//
// The design follows the plane's existing fencing discipline end to end:
//
//   - Every owned domain has an append-only effect log. Entries are
//     appended at post-action time (the moderator's completion hook) and
//     stamped with the owner's lease term, a per-domain sequence number,
//     and the completed method + arguments. Appends are lock-free — one
//     atomic fetch-add assigns the sequence, one atomic store publishes
//     the slot — so the capture hook adds no lock to the admission path.
//   - A per-node streamer asynchronously ships pending entries to the
//     domain's ring successor over the plane's control endpoints, and the
//     successor acknowledges a high-water mark; acknowledged entries are
//     reclaimed. Replication lag is bounded by the log capacity: when the
//     unacknowledged window would wrap, appends are refused and counted
//     (the streamer then escalates to a snapshot resync when the
//     application provides one).
//   - On graceful release the owner drains the log, serializes the
//     component state (when the application provides a Snapshot), installs
//     both at the successor, and only then lets the lease move — the
//     release carries a snapshot barrier recording the handed-over
//     sequence.
//   - On failover the successor replays its replica — snapshot first,
//     then the log suffix — through the local component, fenced at the
//     new term, before asserting ownership. Stale appends (old terms) and
//     duplicates (seq at or below the applied mark) are refused by the
//     receiver exactly like stale wakes are today.
package statesync

import (
	"sync/atomic"
)

// Entry is one replicated effect: a method execution that completed on the
// owner of Domain while it held the lease at Term. Seq is the per-domain,
// per-leadership sequence number (1-based); a new leader starts a fresh
// sequence, so (Term, Seq) totally orders a domain's replicated history.
type Entry struct {
	Domain string `json:"domain"`
	Seq    uint64 `json:"seq"`
	Term   uint64 `json:"term"`
	Method string `json:"method"`
	Args   []any  `json:"args,omitempty"`
}

// logSlot is one ring cell: ready publishes the sequence number whose entry
// the cell currently holds, so readers can detect both unpublished and
// wrapped cells without a lock.
type logSlot struct {
	ready atomic.Uint64
	e     Entry
}

// Log is one domain's effect log: a fixed-capacity MPSC ring. Any number
// of completion hooks may Append concurrently; a single streamer reads
// contiguous published entries and advances the acknowledged mark. A slot
// is reused only after its entry has been acknowledged, so the reader
// never observes a torn entry.
type Log struct {
	domain string
	mask   uint64
	slots  []logSlot

	head     atomic.Uint64 // last assigned sequence (0 = empty)
	acked    atomic.Uint64 // acknowledged high-water mark; entries <= acked are reclaimable
	overflow atomic.Uint64 // appends refused because the unacked window was full
	skipped  atomic.Uint64 // lost sequences abandoned by SkipGap (no snapshot available)
	gapped   atomic.Bool   // the log has lost an entry since the last resync
}

// NewLog creates a log for domain with the given capacity (rounded up to a
// power of two, minimum 16).
func NewLog(domain string, capacity int) *Log {
	size := 16
	for size < capacity {
		size <<= 1
	}
	return &Log{domain: domain, mask: uint64(size - 1), slots: make([]logSlot, size)}
}

// Capacity returns the slot count.
func (l *Log) Capacity() int { return len(l.slots) }

// Append records one completed effect, returning its sequence number and
// whether it was stored. An append that would overwrite an unacknowledged
// entry is refused (the sequence is still consumed): the overflow is
// counted, the log is marked gapped, and the streamer escalates to a
// snapshot resync. Lock-free; safe from any number of goroutines.
func (l *Log) Append(term uint64, method string, args []any) (uint64, bool) {
	seq := l.head.Add(1)
	if seq > uint64(len(l.slots)) && seq-uint64(len(l.slots)) > l.acked.Load() {
		l.overflow.Add(1)
		l.gapped.Store(true)
		return seq, false
	}
	s := &l.slots[seq&l.mask]
	s.e = Entry{Domain: l.domain, Seq: seq, Term: term, Method: method, Args: args}
	s.ready.Store(seq)
	return seq, true
}

// ReadFrom returns up to max contiguous published entries with sequence
// numbers strictly greater than from. It stops at the first unpublished
// (or lost) slot. Single-reader.
func (l *Log) ReadFrom(from uint64, max int) []Entry {
	head := l.head.Load()
	var out []Entry
	for seq := from + 1; seq <= head && len(out) < max; seq++ {
		s := &l.slots[seq&l.mask]
		if s.ready.Load() != seq {
			break // not yet published, or lost to overflow
		}
		e := s.e
		if s.ready.Load() != seq {
			break // wrapped under us (only possible past the acked mark)
		}
		out = append(out, e)
	}
	return out
}

// Ack advances the acknowledged high-water mark (monotone).
func (l *Log) Ack(seq uint64) {
	for {
		cur := l.acked.Load()
		if seq <= cur || l.acked.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// SkipGap abandons the hole at the front of the unacknowledged window: a
// refused append consumes a sequence whose slot is never published, so
// the reader would otherwise stall at it forever. The acknowledged mark
// advances to just before the next published sequence (or to head when
// nothing further is published), the abandoned range is counted, and the
// gapped flag clears. The streamer calls it only when no snapshot resync
// is available — the lost range is then surfaced to the receiver as a
// sequence gap instead of wedging replication for the rest of the term.
// Single-reader, like ReadFrom. Returns how many sequences were abandoned.
func (l *Log) SkipGap() uint64 {
	from := l.acked.Load()
	head := l.head.Load()
	if from >= head {
		return 0
	}
	skipTo := head
	for seq := from + 1; seq <= head; seq++ {
		if l.slots[seq&l.mask].ready.Load() == seq {
			skipTo = seq - 1
			break
		}
	}
	if skipTo <= from {
		return 0
	}
	l.Ack(skipTo)
	l.skipped.Add(skipTo - from)
	l.gapped.Store(false)
	return skipTo - from
}

// LastSeq returns the last assigned sequence number.
func (l *Log) LastSeq() uint64 { return l.head.Load() }

// Acked returns the acknowledged high-water mark.
func (l *Log) Acked() uint64 { return l.acked.Load() }

// Pending returns the number of assigned-but-unacknowledged sequences.
func (l *Log) Pending() uint64 { return l.head.Load() - l.acked.Load() }

// Overflows returns how many appends were refused for a full window.
func (l *Log) Overflows() uint64 { return l.overflow.Load() }

// Skipped returns how many lost sequences SkipGap has abandoned.
func (l *Log) Skipped() uint64 { return l.skipped.Load() }

// Gapped reports whether the log has lost an entry since the last resync.
func (l *Log) Gapped() bool { return l.gapped.Load() }

// Resync marks the log whole again from seq onward: everything at or below
// seq is considered covered (by a snapshot) and reclaimed.
func (l *Log) Resync(seq uint64) {
	l.Ack(seq)
	l.gapped.Store(false)
}
