package statesync

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// pipeTransport delivers offers to in-process peer managers — the plane's
// amrpc hop collapsed to a map lookup.
type pipeTransport struct {
	mu    sync.Mutex
	peers map[string]*Manager
	fail  func(o Offer) error // optional fault hook, checked before delivery
}

func (p *pipeTransport) Offer(ctx context.Context, succ string, o Offer) (Ack, error) {
	p.mu.Lock()
	m := p.peers[succ]
	fail := p.fail
	p.mu.Unlock()
	if fail != nil {
		if err := fail(o); err != nil {
			return Ack{}, err
		}
	}
	if m == nil {
		return Ack{}, errors.New("pipe: no such peer")
	}
	return m.HandleOffer(o)
}

func newPair(t *testing.T, snapshot func(string) ([]byte, error)) (*Manager, *Manager, *pipeTransport) {
	t.Helper()
	tr := &pipeTransport{peers: map[string]*Manager{}}
	mk := func(node string) *Manager {
		m, err := NewManager(Config{Node: node, Transport: tr, Snapshot: snapshot, Interval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		tr.peers[node] = m
		return m
	}
	return mk("A"), mk("B"), tr
}

func replicaSeq(m *Manager, domain string) uint64 {
	for _, st := range m.Status() {
		if st.Domain == domain {
			return st.ReplicaSeq
		}
	}
	return 0
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManagerStreamsEntries pins the steady-state pipeline: leader-side
// captures flow to the successor's replica in order, the ack reclaims
// them, and a takeover surrenders the exact suffix.
func TestManagerStreamsEntries(t *testing.T) {
	a, b, _ := newPair(t, nil)
	a.Lead("alpha", 2)
	a.SetSuccessor("alpha", "B")
	const n = 10
	for i := 1; i <= n; i++ {
		a.Capture("alpha", "put", []any{fmt.Sprintf("id-%d", i)})
	}
	waitFor(t, "replica to reach the head", func() bool { return replicaSeq(b, "alpha") == n })

	// The ack drained the leader's log: lag returns to zero.
	waitFor(t, "leader lag to drain", func() bool {
		for _, st := range a.Status() {
			if st.Domain == "alpha" {
				return st.Leading && st.Lag == 0
			}
		}
		return false
	})

	st, held := b.Takeover("alpha")
	if !held || st.Term != 2 || len(st.Entries) != n {
		t.Fatalf("takeover: held=%v term=%d entries=%d", held, st.Term, len(st.Entries))
	}
	for i, e := range st.Entries {
		if e.Seq != uint64(i+1) || e.Method != "put" {
			t.Fatalf("entry %d out of order: %+v", i, e)
		}
	}
	// Consumed: a second takeover has nothing.
	if _, held := b.Takeover("alpha"); held {
		t.Fatal("replica not consumed by takeover")
	}
}

// TestManagerHandoffSnapshot pins the graceful-release flush: Handoff
// forces a snapshot baseline, drains synchronously, and returns the
// barrier sequence.
func TestManagerHandoffSnapshot(t *testing.T) {
	snap := func(domain string) ([]byte, error) { return []byte(`{"state":"` + domain + `"}`), nil }
	a, b, _ := newPair(t, snap)
	a.Lead("alpha", 4)
	a.SetSuccessor("alpha", "B")
	for i := 0; i < 3; i++ {
		a.Capture("alpha", "put", []any{i})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	seq, err := a.Handoff(ctx, "alpha", "B")
	if err != nil || seq != 3 {
		t.Fatalf("handoff: seq=%d err=%v", seq, err)
	}
	st, held := b.Takeover("alpha")
	if !held || st.Snapshot == nil || st.SnapSeq != 3 || st.Term != 4 {
		t.Fatalf("takeover after handoff: held=%v snap=%q snapSeq=%d term=%d", held, st.Snapshot, st.SnapSeq, st.Term)
	}
	if string(st.Snapshot) != `{"state":"alpha"}` {
		t.Fatalf("snapshot payload %q", st.Snapshot)
	}
}

// TestManagerLeadSameTermKeepsLog pins the idempotent re-lead: a lease
// re-acquired at an unchanged term (the holder never lost it — e.g. a
// transient renew failure dropped it locally) must keep the live log.
// Restarting the sequence at 1 would make the successor's replica — which
// already tracks this term's sequence — refuse every later effect as a
// duplicate.
func TestManagerLeadSameTermKeepsLog(t *testing.T) {
	a, b, _ := newPair(t, nil)
	a.Lead("alpha", 3)
	a.SetSuccessor("alpha", "B")
	const per = 5
	for i := 0; i < per; i++ {
		a.Capture("alpha", "put", []any{i})
	}
	waitFor(t, "replica to reach the head", func() bool { return replicaSeq(b, "alpha") == per })

	a.Lead("alpha", 3) // same term: must be a no-op
	if term, ok := a.Leading("alpha"); !ok || term != 3 {
		t.Fatalf("leading=%v term=%d after same-term re-lead", ok, term)
	}
	if seq := a.Seq("alpha"); seq != per {
		t.Fatalf("sequence restarted on same-term re-lead: seq=%d, want %d", seq, per)
	}
	// Replication keeps flowing: later captures extend the same sequence
	// and land on the replica instead of being dropped as duplicates.
	for i := per; i < 2*per; i++ {
		a.Capture("alpha", "put", []any{i})
	}
	waitFor(t, "replica to advance past the re-lead", func() bool { return replicaSeq(b, "alpha") == 2*per })

	a.Lead("alpha", 4) // a genuinely new leadership starts a fresh sequence
	if seq := a.Seq("alpha"); seq != 0 {
		t.Fatalf("new-term lead kept the old sequence: seq=%d", seq)
	}
}

// TestManagerSkipsHoleWithoutSnapshot pins the no-snapshot overflow path:
// the streamer abandons the lost range (surfacing a gap to the receiver)
// instead of stalling at the hole forever — which would silently stop
// replication for the rest of the term and wedge every later Handoff.
func TestManagerSkipsHoleWithoutSnapshot(t *testing.T) {
	tr := &pipeTransport{peers: map[string]*Manager{}}
	blocked := true
	var mu sync.Mutex
	tr.fail = func(o Offer) error {
		mu.Lock()
		defer mu.Unlock()
		if blocked {
			return errors.New("partitioned")
		}
		return nil
	}
	a, err := NewManager(Config{Node: "A", Transport: tr, Capacity: 16, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := NewManager(Config{Node: "B", Transport: tr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	tr.peers["B"] = b

	a.Lead("alpha", 1)
	a.SetSuccessor("alpha", "B")
	// Overfill while the successor is unreachable: appends past the window
	// are refused, leaving a hole no snapshot can cover.
	for i := 0; i < 40; i++ {
		a.Capture("alpha", "put", []any{i})
	}
	overflowed := false
	for _, st := range a.Status() {
		if st.Domain == "alpha" && st.Overflows > 0 {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("log never overflowed under a dead successor")
	}
	// Heal: the published prefix ships, then the streamer abandons the
	// lost range and the lag drains instead of wedging.
	mu.Lock()
	blocked = false
	mu.Unlock()
	waitFor(t, "lag to drain past the hole", func() bool {
		for _, st := range a.Status() {
			if st.Domain == "alpha" {
				return st.Lag == 0 && st.Skipped > 0
			}
		}
		return false
	})
	// Later effects keep streaming, and the receiver records the gap.
	for i := 40; i < 45; i++ {
		a.Capture("alpha", "put", []any{i})
	}
	waitFor(t, "post-hole suffix to reach the replica", func() bool {
		for _, st := range b.Status() {
			if st.Domain == "alpha" {
				return st.ReplicaSeq == 45 && st.Gaps > 0
			}
		}
		return false
	})
	// A graceful handoff drains instead of spinning to its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	seq, err := a.Handoff(ctx, "alpha", "B")
	if err != nil || seq != 45 {
		t.Fatalf("handoff after overflow: seq=%d err=%v", seq, err)
	}
}

// TestManagerStaleLeaderFencedOff pins replication fencing: a receiver
// that itself leads the domain at the same (or higher) term refuses the
// offer, and the sender treats the refusal as terminal.
func TestManagerStaleLeaderFencedOff(t *testing.T) {
	a, b, _ := newPair(t, nil)
	a.Lead("alpha", 5)
	a.SetSuccessor("alpha", "B")
	b.Lead("alpha", 5) // B took over at the same term: A is a zombie
	a.Capture("alpha", "put", []any{"x"})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := a.Handoff(ctx, "alpha", "B"); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("zombie handoff: err=%v, want ErrStaleTerm", err)
	}
	refused := false
	for _, st := range b.Status() {
		if st.Domain == "alpha" && st.StaleRefused > 0 {
			refused = true
		}
	}
	if !refused {
		t.Fatal("receiver did not count the stale refusal")
	}
}

// TestManagerReplicaDiscipline pins the receiver's idempotency rules:
// duplicates dropped, gaps counted with the suffix restarted, a higher
// term superseding the replica wholesale.
func TestManagerReplicaDiscipline(t *testing.T) {
	tr := &pipeTransport{peers: map[string]*Manager{}}
	m, err := NewManager(Config{Node: "B", Transport: tr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	mkOffer := func(term uint64, seqs ...uint64) Offer {
		o := Offer{From: "A", Domain: "alpha", Term: term}
		for _, s := range seqs {
			o.Entries = append(o.Entries, Entry{Domain: "alpha", Seq: s, Term: term, Method: "put"})
		}
		return o
	}
	ack, err := m.HandleOffer(mkOffer(1, 1, 2))
	if err != nil || ack.Acked != 2 {
		t.Fatalf("first offer: ack=%d err=%v", ack.Acked, err)
	}
	// A retransmission: dropped idempotently, ack unchanged.
	ack, err = m.HandleOffer(mkOffer(1, 1, 2))
	if err != nil || ack.Acked != 2 {
		t.Fatalf("duplicate offer: ack=%d err=%v", ack.Acked, err)
	}
	// A hole (sender overflowed): the gap is recorded, the suffix restarts.
	ack, err = m.HandleOffer(mkOffer(1, 5))
	if err != nil || ack.Acked != 5 {
		t.Fatalf("gapped offer: ack=%d err=%v", ack.Acked, err)
	}
	var st0 struct{ dups, gaps uint64 }
	for _, st := range m.Status() {
		if st.Domain == "alpha" {
			st0.dups, st0.gaps = st.Duplicates, st.Gaps
		}
	}
	if st0.dups != 2 || st0.gaps != 1 {
		t.Fatalf("dups=%d gaps=%d, want 2/1", st0.dups, st0.gaps)
	}
	// A stale term is refused outright.
	if _, err := m.HandleOffer(mkOffer(0, 6)); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("stale-term offer: err=%v", err)
	}
	// A higher term supersedes the old replica wholesale: its sequence
	// starts over.
	ack, err = m.HandleOffer(mkOffer(2, 1))
	if err != nil || ack.Acked != 1 {
		t.Fatalf("new-term offer: ack=%d err=%v", ack.Acked, err)
	}
	st2, held := m.Takeover("alpha")
	if !held || st2.Term != 2 || len(st2.Entries) != 1 || st2.Entries[0].Seq != 1 {
		t.Fatalf("takeover after term bump: held=%v %+v", held, st2)
	}
}

// TestManagerSnapshotResyncAfterOverflow pins the bounded-lag escalation:
// when the log overflows (successor unreachable), the next successful
// round ships a snapshot that covers the hole.
func TestManagerSnapshotResyncAfterOverflow(t *testing.T) {
	snap := func(domain string) ([]byte, error) { return []byte("full-state"), nil }
	tr := &pipeTransport{peers: map[string]*Manager{}}
	blocked := true
	var mu sync.Mutex
	tr.fail = func(o Offer) error {
		mu.Lock()
		defer mu.Unlock()
		if blocked {
			return errors.New("partitioned")
		}
		return nil
	}
	a, err := NewManager(Config{Node: "A", Transport: tr, Snapshot: snap, Capacity: 16, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := NewManager(Config{Node: "B", Transport: tr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	tr.peers["B"] = b

	a.Lead("alpha", 1)
	a.SetSuccessor("alpha", "B")
	// Overfill while the successor is unreachable: appends past the window
	// are refused and counted.
	for i := 0; i < 40; i++ {
		a.Capture("alpha", "put", []any{i})
	}
	overflowed := false
	for _, st := range a.Status() {
		if st.Domain == "alpha" && st.Overflows > 0 {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("log never overflowed under a dead successor")
	}
	// Heal: the streamer escalates to a snapshot resync covering the hole.
	mu.Lock()
	blocked = false
	mu.Unlock()
	waitFor(t, "snapshot resync", func() bool {
		for _, st := range b.Status() {
			if st.Domain == "alpha" && st.SnapshotsRecv > 0 {
				return true
			}
		}
		return false
	})
	st, held := b.Takeover("alpha")
	if !held || string(st.Snapshot) != "full-state" {
		t.Fatalf("post-overflow takeover: held=%v snap=%q", held, st.Snapshot)
	}
}
