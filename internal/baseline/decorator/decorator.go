// Package decorator is the second evaluation baseline: concern composition
// by interceptor chaining around an Invoker — what a developer without the
// Aspect Moderator's two-dimensional bank would write (and what mainstream
// AOP-lite frameworks like servlet filters provide).
//
// A decorator chain is one-dimensional: interceptors wrap an invoker in
// nesting order and see every method alike. Compared to the framework it
// has no (method x concern) coordinates, no blocking verdicts with guarded
// re-evaluation (an interceptor can only run code before/after or reject),
// and recomposition means rebuilding the chain. The benchmarks quantify
// what that structural difference costs or saves.
package decorator

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/proxy"
)

// Interceptor surrounds an invocation: Before may reject it by returning an
// error; After observes its outcome.
type Interceptor interface {
	// Name identifies the interceptor for diagnostics.
	Name() string
	// Before runs ahead of the call; a non-nil error rejects it.
	Before(ctx context.Context, method string, args []any) error
	// After runs once the call completes.
	After(ctx context.Context, method string, result any, err error)
}

// Funcs adapts functions to Interceptor. Nil hooks are no-ops.
type Funcs struct {
	InterceptorName string
	BeforeFn        func(ctx context.Context, method string, args []any) error
	AfterFn         func(ctx context.Context, method string, result any, err error)
}

var _ Interceptor = (*Funcs)(nil)

// Name implements Interceptor.
func (f *Funcs) Name() string {
	if f.InterceptorName == "" {
		return "anonymous"
	}
	return f.InterceptorName
}

// Before implements Interceptor.
func (f *Funcs) Before(ctx context.Context, method string, args []any) error {
	if f.BeforeFn == nil {
		return nil
	}
	return f.BeforeFn(ctx, method, args)
}

// After implements Interceptor.
func (f *Funcs) After(ctx context.Context, method string, result any, err error) {
	if f.AfterFn == nil {
		return
	}
	f.AfterFn(ctx, method, result, err)
}

// Chain wraps an invoker with interceptors: the first interceptor is
// outermost (its Before runs first, its After last).
func Chain(inner proxy.Invoker, interceptors ...Interceptor) (proxy.Invoker, error) {
	if inner == nil {
		return nil, errors.New("decorator: nil invoker")
	}
	for i, ic := range interceptors {
		if ic == nil {
			return nil, fmt.Errorf("decorator: nil interceptor at %d", i)
		}
	}
	return &chained{inner: inner, interceptors: interceptors}, nil
}

type chained struct {
	inner        proxy.Invoker
	interceptors []Interceptor
}

// Invoke implements proxy.Invoker.
func (c *chained) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	for i, ic := range c.interceptors {
		if err := ic.Before(ctx, method, args); err != nil {
			// Rejected: unwind the already-admitted interceptors.
			for j := i - 1; j >= 0; j-- {
				c.interceptors[j].After(ctx, method, nil, err)
			}
			return nil, fmt.Errorf("decorator: %s rejected %s: %w", ic.Name(), method, err)
		}
	}
	result, err := c.inner.Invoke(ctx, method, args...)
	for i := len(c.interceptors) - 1; i >= 0; i-- {
		c.interceptors[i].After(ctx, method, result, err)
	}
	return result, err
}

// MutexInterceptor serializes all invocations through the chain — the
// closest a one-dimensional interceptor gets to the framework's
// synchronization aspects (it cannot express per-method guarded blocking,
// only whole-component exclusion).
func MutexInterceptor() Interceptor {
	var mu sync.Mutex
	return &Funcs{
		InterceptorName: "mutex",
		BeforeFn: func(context.Context, string, []any) error {
			mu.Lock()
			return nil
		},
		AfterFn: func(context.Context, string, any, error) {
			mu.Unlock()
		},
	}
}

// TokenInterceptor rejects invocations whose context lacks a valid token —
// decorator-style authentication. Tokens travel on the context because the
// interceptor API has no invocation record to attach attributes to.
func TokenInterceptor(valid func(token string) bool) Interceptor {
	return &Funcs{
		InterceptorName: "token",
		BeforeFn: func(ctx context.Context, method string, _ []any) error {
			tok, _ := ctx.Value(tokenKey{}).(string)
			if !valid(tok) {
				return fmt.Errorf("token interceptor: %s: unauthenticated", method)
			}
			return nil
		},
	}
}

type tokenKey struct{}

// WithToken attaches a token for TokenInterceptor.
func WithToken(ctx context.Context, token string) context.Context {
	return context.WithValue(ctx, tokenKey{}, token)
}

// CountingInterceptor counts invocations and errors — decorator-style
// metrics/audit.
type CountingInterceptor struct {
	mu     sync.Mutex
	Calls  uint64
	Errors uint64
}

var _ Interceptor = (*CountingInterceptor)(nil)

// Name implements Interceptor.
func (c *CountingInterceptor) Name() string { return "counting" }

// Before implements Interceptor.
func (c *CountingInterceptor) Before(context.Context, string, []any) error { return nil }

// After implements Interceptor.
func (c *CountingInterceptor) After(_ context.Context, _ string, _ any, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Calls++
	if err != nil {
		c.Errors++
	}
}

// Snapshot returns the counters.
func (c *CountingInterceptor) Snapshot() (calls, errs uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Calls, c.Errors
}
