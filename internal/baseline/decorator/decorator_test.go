package decorator

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

func newEcho(t *testing.T) *proxy.Proxy {
	t.Helper()
	p := proxy.New(moderator.New("svc"))
	if err := p.Bind("echo", func(inv *aspect.Invocation) (any, error) {
		return inv.Arg(0), nil
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestChainValidation(t *testing.T) {
	if _, err := Chain(nil); err == nil {
		t.Error("nil invoker must error")
	}
	if _, err := Chain(newEcho(t), nil); err == nil {
		t.Error("nil interceptor must error")
	}
}

func TestChainOrdering(t *testing.T) {
	var mu sync.Mutex
	var order []string
	mk := func(name string) Interceptor {
		return &Funcs{
			InterceptorName: name,
			BeforeFn: func(context.Context, string, []any) error {
				mu.Lock()
				order = append(order, name+".before")
				mu.Unlock()
				return nil
			},
			AfterFn: func(context.Context, string, any, error) {
				mu.Lock()
				order = append(order, name+".after")
				mu.Unlock()
			},
		}
	}
	c, err := Chain(newEcho(t), mk("outer"), mk("inner"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Invoke(context.Background(), "echo", "x")
	if err != nil || got != "x" {
		t.Fatalf("invoke = %v, %v", got, err)
	}
	want := []string{"outer.before", "inner.before", "inner.after", "outer.after"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestRejectionUnwinds(t *testing.T) {
	var mu sync.Mutex
	var order []string
	outer := &Funcs{
		InterceptorName: "outer",
		BeforeFn: func(context.Context, string, []any) error {
			mu.Lock()
			order = append(order, "outer.before")
			mu.Unlock()
			return nil
		},
		AfterFn: func(_ context.Context, _ string, _ any, err error) {
			mu.Lock()
			order = append(order, "outer.after")
			mu.Unlock()
		},
	}
	boom := errors.New("denied")
	rejecting := &Funcs{
		InterceptorName: "reject",
		BeforeFn: func(context.Context, string, []any) error {
			return boom
		},
	}
	c, err := Chain(newEcho(t), outer, rejecting)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Invoke(context.Background(), "echo", "x")
	if !errors.Is(err, boom) {
		t.Fatalf("want %v, got %v", boom, err)
	}
	want := []string{"outer.before", "outer.after"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("unwind order = %v, want %v", order, want)
	}
}

func TestMutexInterceptorSerializes(t *testing.T) {
	active, maxActive := 0, 0
	var stateMu sync.Mutex
	p := proxy.New(moderator.New("svc"))
	if err := p.Bind("work", func(*aspect.Invocation) (any, error) {
		stateMu.Lock()
		active++
		if active > maxActive {
			maxActive = active
		}
		stateMu.Unlock()
		stateMu.Lock()
		active--
		stateMu.Unlock()
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	c, err := Chain(p, MutexInterceptor())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				if _, err := c.Invoke(context.Background(), "work"); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxActive != 1 {
		t.Errorf("max concurrent = %d, want 1", maxActive)
	}
}

func TestTokenInterceptor(t *testing.T) {
	c, err := Chain(newEcho(t), TokenInterceptor(func(tok string) bool { return tok == "good" }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "echo", "x"); err == nil {
		t.Error("missing token must reject")
	}
	ctx := WithToken(context.Background(), "bad")
	if _, err := c.Invoke(ctx, "echo", "x"); err == nil {
		t.Error("bad token must reject")
	}
	ctx = WithToken(context.Background(), "good")
	got, err := c.Invoke(ctx, "echo", "x")
	if err != nil || got != "x" {
		t.Errorf("good token = %v, %v", got, err)
	}
}

func TestCountingInterceptor(t *testing.T) {
	p := proxy.New(moderator.New("svc"))
	boom := errors.New("fail")
	if err := p.Bind("m", func(inv *aspect.Invocation) (any, error) {
		if inv.Arg(0) == "fail" {
			return nil, boom
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	counter := &CountingInterceptor{}
	c, err := Chain(p, counter)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Invoke(context.Background(), "m", "ok")
	_, _ = c.Invoke(context.Background(), "m", "fail")
	calls, errs := counter.Snapshot()
	if calls != 2 || errs != 1 {
		t.Errorf("counters = %d/%d, want 2/1", calls, errs)
	}
}

func TestFuncsDefaults(t *testing.T) {
	f := &Funcs{}
	if f.Name() != "anonymous" {
		t.Errorf("name = %q", f.Name())
	}
	if err := f.Before(context.Background(), "m", nil); err != nil {
		t.Errorf("nil Before: %v", err)
	}
	f.After(context.Background(), "m", nil, nil) // must not panic
}
