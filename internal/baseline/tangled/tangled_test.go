package tangled

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/ticket"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("capacity 0 must error")
	}
}

func TestBasicFlow(t *testing.T) {
	s, err := New(Config{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Open(ctx, "", ticket.Ticket{ID: "t1"}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Assign(ctx, "")
	if err != nil || got.ID != "t1" {
		t.Fatalf("assign = %+v, %v", got, err)
	}
}

func TestAuthenticationTangledIn(t *testing.T) {
	s, err := New(Config{Capacity: 2, Authenticate: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Open(ctx, "bogus", ticket.Ticket{ID: "t1"}); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("bogus token: %v", err)
	}
	s.IssueToken("tok-1", "alice")
	if err := s.Open(ctx, "tok-1", ticket.Ticket{ID: "t1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assign(ctx, "forged"); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("forged assign: %v", err)
	}
}

func TestAuditTangledIn(t *testing.T) {
	s, err := New(Config{Capacity: 2, AuditCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for k := 0; k < 2; k++ {
		if err := s.Open(ctx, "", ticket.Ticket{ID: fmt.Sprint(k)}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Assign(ctx, ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.AuditLen(); got != 3 { // ring capacity
		t.Errorf("audit len = %d, want 3", got)
	}
}

func TestBlockingProducerConsumer(t *testing.T) {
	s, err := New(Config{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const total = 100
	var wg sync.WaitGroup
	got := make(chan string, total)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := 0; k < total; k++ {
			if err := s.Open(ctx, "", ticket.Ticket{ID: fmt.Sprint(k)}); err != nil {
				t.Errorf("open: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < total; k++ {
			tk, err := s.Assign(ctx, "")
			if err != nil {
				t.Errorf("assign: %v", err)
				return
			}
			got <- tk.ID
		}
	}()
	wg.Wait()
	close(got)
	// FIFO order must hold with one producer, one consumer.
	k := 0
	for id := range got {
		if id != fmt.Sprint(k) {
			t.Fatalf("order broken at %d: %s", k, id)
		}
		k++
	}
	if s.Size() != 0 {
		t.Errorf("final size = %d", s.Size())
	}
}

func TestCancellationNeedsKick(t *testing.T) {
	// Pins the expressiveness gap the package doc describes: a caller
	// blocked in sync.Cond.Wait only observes cancellation after a Kick.
	s, err := New(Config{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(context.Background(), "", ticket.Ticket{ID: "fill"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.Open(ctx, "", ticket.Ticket{ID: "blocked"})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
		t.Fatal("tangled open observed cancellation without a kick — test premise broken")
	case <-time.After(50 * time.Millisecond):
	}
	s.Kick()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("kicked waiter never returned")
	}
}
