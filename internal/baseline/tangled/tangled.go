// Package tangled is the paper's antagonist, implemented for the
// evaluation: a trouble-ticketing server in which the synchronization,
// authentication, and audit code is written directly into the functional
// methods — the "code-tangling" of Kiczales et al. that the Aspect
// Moderator framework exists to eliminate.
//
// It is functionally equivalent to the framework-composed stack
// (apps/ticket with authentication and audit enabled), which makes it the
// fair baseline for experiment E1/E4: any throughput difference is the
// price (or absence of price) of separation, not of differing semantics.
//
// Reading this file next to apps/ticket/ticket.go is itself part of the
// reproduction: every concern below is interleaved with buffer logic and
// none is reusable.
package tangled

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/apps/ticket"
)

// Sentinel errors mirroring the framework stack's behaviour.
var (
	// ErrUnauthenticated is returned when token checking is enabled and
	// the caller's token is missing or unknown.
	ErrUnauthenticated = errors.New("tangled: unauthenticated")
)

// AuditEntry is one tangled audit record.
type AuditEntry struct {
	Seq    uint64
	Method string
	Err    string
}

// Server is the tangled ticket server: one mutex, two condition variables,
// inline token checks, inline audit — everything the framework factors out,
// hand-woven together.
type Server struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	ring []ticket.Ticket
	head int
	tail int
	size int

	// tangled authentication state
	authEnabled bool
	tokens      map[string]string // token -> principal

	// tangled audit state
	auditEnabled bool
	auditSeq     uint64
	audit        []AuditEntry
	auditCap     int
}

// Config configures New.
type Config struct {
	// Capacity of the ticket buffer.
	Capacity int
	// Authenticate enables inline token checking.
	Authenticate bool
	// AuditCapacity, when positive, enables the inline audit ring.
	AuditCapacity int
}

// New creates a tangled server.
func New(cfg Config) (*Server, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("tangled: capacity %d must be positive", cfg.Capacity)
	}
	s := &Server{
		ring:         make([]ticket.Ticket, cfg.Capacity),
		authEnabled:  cfg.Authenticate,
		tokens:       make(map[string]string, 8),
		auditEnabled: cfg.AuditCapacity > 0,
		auditCap:     cfg.AuditCapacity,
	}
	s.notFull = sync.NewCond(&s.mu)
	s.notEmpty = sync.NewCond(&s.mu)
	return s, nil
}

// IssueToken registers a token for a principal (when authenticating).
func (s *Server) IssueToken(token, principal string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[token] = principal
}

// Open places a ticket, blocking while the buffer is full. Note how the
// method interleaves authentication, auditing, synchronization, and the
// actual buffer operation — the tangling the paper's Section 1 describes.
func (s *Server) Open(ctx context.Context, token string, t ticket.Ticket) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	// ... authentication concern, tangled in:
	if s.authEnabled {
		if _, ok := s.tokens[token]; !ok {
			s.recordLocked("open", ErrUnauthenticated.Error())
			return ErrUnauthenticated
		}
	}
	// ... synchronization concern, tangled in:
	for s.size == len(s.ring) {
		if err := ctx.Err(); err != nil {
			s.recordLocked("open", err.Error())
			return err
		}
		s.notFull.Wait()
		// A context cancelled while waiting is only noticed on wake-up:
		// sync.Cond has no cancellation — one of the expressiveness gaps
		// the framework's context-aware wait queues close.
	}
	// ... at last, the functional concern:
	s.ring[s.tail] = t
	s.tail = (s.tail + 1) % len(s.ring)
	s.size++
	// ... audit concern, tangled in:
	s.recordLocked("open", "")
	s.notEmpty.Signal()
	return nil
}

// Assign retrieves the oldest ticket, blocking while the buffer is empty.
func (s *Server) Assign(ctx context.Context, token string) (ticket.Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.authEnabled {
		if _, ok := s.tokens[token]; !ok {
			s.recordLocked("assign", ErrUnauthenticated.Error())
			return ticket.Ticket{}, ErrUnauthenticated
		}
	}
	for s.size == 0 {
		if err := ctx.Err(); err != nil {
			s.recordLocked("assign", err.Error())
			return ticket.Ticket{}, err
		}
		s.notEmpty.Wait()
	}
	t := s.ring[s.head]
	s.ring[s.head] = ticket.Ticket{}
	s.head = (s.head + 1) % len(s.ring)
	s.size--
	s.recordLocked("assign", "")
	s.notFull.Signal()
	return t, nil
}

// recordLocked is the tangled audit write (mu held).
func (s *Server) recordLocked(method, errMsg string) {
	if !s.auditEnabled {
		return
	}
	s.auditSeq++
	s.audit = append(s.audit, AuditEntry{Seq: s.auditSeq, Method: method, Err: errMsg})
	if len(s.audit) > s.auditCap {
		s.audit = s.audit[len(s.audit)-s.auditCap:]
	}
}

// Size returns the number of buffered tickets.
func (s *Server) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// AuditLen returns the number of retained audit entries.
func (s *Server) AuditLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.audit)
}

// Kick wakes all waiters so they can observe context cancellation. The
// tangled design needs this helper precisely because sync.Cond waits are
// not cancellable.
func (s *Server) Kick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notFull.Broadcast()
	s.notEmpty.Broadcast()
}
