# Verification stages for the aspect-moderator reproduction.
#
#   make tier1       — build + full test suite (the gating check)
#   make lint        — go vet, plus staticcheck when it is on PATH
#   make race        — full suite under the race detector, plus a focused
#                      double-count pass over the sharded-moderator stress
#                      and differential-oracle tests, and the obs
#                      ring/histogram/churn concurrency tests
#   make fuzz-smoke  — 10s of coverage-guided fuzzing per target: the
#                      wire decoders, the interference checker, and the
#                      seqlock guard-eval differential target
#   make bench       — regenerate the committed BENCH_2.json + BENCH_3.json
#                      baselines in one interleaved pass
#   make bench-matrix — regenerate the committed BENCH_4.json GOMAXPROCS x
#                      workload matrix (best-of-5, variants interleaved)
#   make bench-shadow — regenerate the committed BENCH_5.json shadow
#                      admission overhead baseline
#   make bench-statesync — regenerate the committed BENCH_6.json state
#                      handoff baseline (capture overhead + handoff latency)
#   make bench-loop  — regenerate the committed BENCH_7.json closed-loop
#                      batched admission baseline (TCP loop, shed, contended
#                      + uncontended admission cells)
#   make loop-smoke  — a -quick E19 pass into a scratch dir, asserting the
#                      closed loop loses nothing (lost=0, residue=0), the
#                      contention gate fires, and sheds carry retry hints
#   make obs-smoke   — boot ticketd with -obs, drive load, assert /metrics
#                      and /trace serve live non-empty data
#   make shadow-smoke — boot ticketd with -shadow 1 (every admission
#                      replayed against the reference semantics), drive
#                      load, assert /shadow reports samples and ZERO
#                      divergences on the stock ticket application
#   make cluster-smoke — the 3-node in-process admission-plane soak:
#                      ≥1000 guarded invocations under chaosnet faults
#                      with a mid-run partition+heal and an owner kill,
#                      plus the failover and park-readmission tests
#   make handoff-smoke — the deterministic state-handoff certification:
#                      graceful release via the snapshot barrier, hard
#                      kill via effect-log catch-up, and stale-term
#                      replication fencing
#   make check       — tier1 + lint + race + fuzz-smoke + obs-smoke +
#                      shadow-smoke + cluster-smoke + handoff-smoke +
#                      loop-smoke

GO ?= go
FUZZTIME ?= 10s
OBS_SMOKE_DIR := $(or $(TMPDIR),/tmp)/obs-smoke
SHADOW_SMOKE_DIR := $(or $(TMPDIR),/tmp)/shadow-smoke
LOOP_SMOKE_DIR := $(or $(TMPDIR),/tmp)/loop-smoke

.PHONY: tier1 lint race fuzz-smoke bench bench-matrix bench-shadow bench-statesync bench-loop loop-smoke obs-smoke shadow-smoke cluster-smoke handoff-smoke check

tier1:
	$(GO) build ./...
	$(GO) test ./...

lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go vet ran)"; \
	fi

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -short -run 'TestModeratorStress|TestDifferential|TestWakeMode' ./internal/moderator/ ./internal/waitq/
	$(GO) test -race -count=2 -run 'TestObsUnderLayerChurn|TestHistogramMergeRace|TestRingNeverBlocks' ./internal/obs/

bench:
	$(GO) run ./cmd/ambench -json BENCH_2.json -obs-json BENCH_3.json

bench-matrix:
	$(GO) run ./cmd/ambench -matrix-json BENCH_4.json

bench-shadow:
	$(GO) run ./cmd/ambench -shadow-json BENCH_5.json

bench-statesync:
	$(GO) run ./cmd/ambench -statesync-json BENCH_6.json

bench-loop:
	$(GO) run ./cmd/ambench -loop-json BENCH_7.json

# A fast E19 pass into a scratch dir. Not a performance claim — the quick
# geometry is too small for stable ratios — but the correctness clauses
# must hold at any scale: the closed loop completes every admission
# (lost=0), the ticket buffer drains (residue=0), the contention gate's
# mutex-free probe fires, and every shed response carries a retry hint.
loop-smoke:
	rm -rf $(LOOP_SMOKE_DIR) && mkdir -p $(LOOP_SMOKE_DIR)
	$(GO) run ./cmd/ambench -quick -loop-json $(LOOP_SMOKE_DIR)/loop.json
	grep -q '"lost": 0' $(LOOP_SMOKE_DIR)/loop.json || { echo "loop-smoke: closed loop lost admissions"; exit 1; }
	grep -q '"residue": 0' $(LOOP_SMOKE_DIR)/loop.json || { echo "loop-smoke: ticket buffer residue at quiescence"; exit 1; }
	grep -q '"mutex_bypasses": [1-9]' $(LOOP_SMOKE_DIR)/loop.json || { echo "loop-smoke: contention gate never bypassed"; exit 1; }
	grep -q '"retry_after_ms_max": [1-9]' $(LOOP_SMOKE_DIR)/loop.json || { echo "loop-smoke: sheds carried no retry-after hint"; exit 1; }
	@echo "loop-smoke: OK"

fuzz-smoke:
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeResponse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/moderator -run '^$$' -fuzz '^FuzzInterferenceChecker$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/moderator -run '^$$' -fuzz '^FuzzSeqlockGuardEval$$' -fuzztime $(FUZZTIME)

# End-to-end introspection smoke: a real ticketd process with the obs
# endpoint enabled, a real ticketcli driving load over amrpc, then the
# HTTP surface must serve non-empty metrics and a non-empty trace dump.
obs-smoke:
	rm -rf $(OBS_SMOKE_DIR) && mkdir -p $(OBS_SMOKE_DIR)
	$(GO) build -o $(OBS_SMOKE_DIR)/ticketd ./cmd/ticketd
	$(GO) build -o $(OBS_SMOKE_DIR)/ticketcli ./cmd/ticketcli
	$(OBS_SMOKE_DIR)/ticketd -addr 127.0.0.1:7941 -obs 127.0.0.1:7942 -obs-sample 1 -audit 0 \
		> $(OBS_SMOKE_DIR)/ticketd.log 2>&1 & echo $$! > $(OBS_SMOKE_DIR)/ticketd.pid
	sh -c 'trap "kill $$(cat $(OBS_SMOKE_DIR)/ticketd.pid) 2>/dev/null" EXIT; \
		for i in $$(seq 1 50); do \
			$(OBS_SMOKE_DIR)/ticketcli -addr 127.0.0.1:7941 open smoke "obs smoke" >/dev/null 2>&1 && break; \
			sleep 0.1; \
		done; \
		$(OBS_SMOKE_DIR)/ticketcli -addr 127.0.0.1:7941 load -n 50 >/dev/null; \
		curl -sf http://127.0.0.1:7942/metrics > $(OBS_SMOKE_DIR)/metrics.txt; \
		curl -sf "http://127.0.0.1:7942/trace?n=32" > $(OBS_SMOKE_DIR)/trace.json; \
		grep -q "^am_admissions_total" $(OBS_SMOKE_DIR)/metrics.txt || { echo "obs-smoke: no admissions in /metrics"; exit 1; }; \
		grep -q "\"op\": *\"admit\"" $(OBS_SMOKE_DIR)/trace.json || { echo "obs-smoke: no admit events in /trace"; exit 1; }; \
		$(OBS_SMOKE_DIR)/ticketcli obs -url http://127.0.0.1:7942 -view summary | grep -q "sampling" || { echo "obs-smoke: ticketcli obs summary failed"; exit 1; }'
	@echo "obs-smoke: OK"

# End-to-end shadow-admission smoke: a real ticketd with shadow mode
# replaying EVERY admission against the reference semantics, a real
# ticketcli driving load over amrpc, then /shadow must report samples and
# zero divergences — the differential oracle holding as a production
# safety net on the stock ticket application.
shadow-smoke:
	rm -rf $(SHADOW_SMOKE_DIR) && mkdir -p $(SHADOW_SMOKE_DIR)
	$(GO) build -o $(SHADOW_SMOKE_DIR)/ticketd ./cmd/ticketd
	$(GO) build -o $(SHADOW_SMOKE_DIR)/ticketcli ./cmd/ticketcli
	$(SHADOW_SMOKE_DIR)/ticketd -addr 127.0.0.1:7943 -obs 127.0.0.1:7944 -shadow 1 -audit 0 \
		> $(SHADOW_SMOKE_DIR)/ticketd.log 2>&1 & echo $$! > $(SHADOW_SMOKE_DIR)/ticketd.pid
	sh -c 'trap "kill $$(cat $(SHADOW_SMOKE_DIR)/ticketd.pid) 2>/dev/null" EXIT; \
		for i in $$(seq 1 50); do \
			$(SHADOW_SMOKE_DIR)/ticketcli -addr 127.0.0.1:7943 open smoke "shadow smoke" >/dev/null 2>&1 && break; \
			sleep 0.1; \
		done; \
		$(SHADOW_SMOKE_DIR)/ticketcli -addr 127.0.0.1:7943 load -n 100 >/dev/null; \
		sleep 0.3; \
		curl -sf http://127.0.0.1:7944/shadow > $(SHADOW_SMOKE_DIR)/shadow.json; \
		grep -q "\"sampled\": *[1-9]" $(SHADOW_SMOKE_DIR)/shadow.json || { echo "shadow-smoke: no sampled admissions in /shadow"; cat $(SHADOW_SMOKE_DIR)/shadow.json; exit 1; }; \
		grep -q "\"verdict_divergences\": *0" $(SHADOW_SMOKE_DIR)/shadow.json || { echo "shadow-smoke: verdict divergences on the stock app"; cat $(SHADOW_SMOKE_DIR)/shadow.json; exit 1; }; \
		grep -q "\"stack_divergences\": *0" $(SHADOW_SMOKE_DIR)/shadow.json || { echo "shadow-smoke: stack divergences on the stock app"; cat $(SHADOW_SMOKE_DIR)/shadow.json; exit 1; }; \
		grep -q "\"wake_divergences\": *0" $(SHADOW_SMOKE_DIR)/shadow.json || { echo "shadow-smoke: wake divergences on the stock app"; cat $(SHADOW_SMOKE_DIR)/shadow.json; exit 1; }; \
		$(SHADOW_SMOKE_DIR)/ticketcli obs -url http://127.0.0.1:7944 -view shadow | grep -q "\"replayed\"" || { echo "shadow-smoke: ticketcli obs -view shadow failed"; exit 1; }'
	@echo "shadow-smoke: OK"

# The distributed-admission certification run: a 3-node in-process
# cluster soak (chaos faults on every data-plane link, one node
# partitioned and healed mid-run, the owner of a domain killed outright)
# plus the deterministic failover and parked-caller re-admission tests.
# The ledger audit inside demands zero lost and zero forged effects.
cluster-smoke:
	$(GO) test ./internal/cluster/ -count=1 -timeout 120s \
		-run 'TestClusterChaosSoak|TestClusterFailover|TestClusterFailoverReadmitsParkedCallers|TestClusterDifferentialOracle'
	@echo "cluster-smoke: OK"

# The state-handoff certification run: one deterministic test per handoff
# path. Graceful release must move the domain's full state through the
# snapshot barrier before the lease moves; a hard kill must recover it
# from the streamed effect log alone (no snapshot hooks); a zombie
# leader's replication offer at a stale term must be refused; a lease
# re-acquired at an unchanged term must keep its effect log; and a
# snapshot the taker cannot install must be counted as a catch-up gap.
handoff-smoke:
	$(GO) test ./internal/cluster/ -count=1 -timeout 120s \
		-run 'TestClusterGracefulHandoffSnapshot|TestClusterHardKillLogCatchup|TestClusterStaleSyncOfferRefused|TestClusterSameTermReacquireKeepsReplication|TestClusterSnapshotWithoutRestoreCountsGap'
	@echo "handoff-smoke: OK"

check: tier1 lint race fuzz-smoke obs-smoke shadow-smoke cluster-smoke handoff-smoke loop-smoke
