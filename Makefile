# Verification stages for the aspect-moderator reproduction.
#
#   make tier1       — build + full test suite (the gating check)
#   make lint        — go vet, plus staticcheck when it is on PATH
#   make race        — full suite under the race detector, plus a focused
#                      double-count pass over the sharded-moderator stress
#                      and differential-oracle tests, and the obs
#                      ring/histogram/churn concurrency tests
#   make fuzz-smoke  — 10s of coverage-guided fuzzing per wire-decode target
#   make bench       — regenerate the committed BENCH_2.json + BENCH_3.json
#                      baselines in one interleaved pass
#   make bench-matrix — regenerate the committed BENCH_4.json GOMAXPROCS x
#                      workload matrix (best-of-5, variants interleaved)
#   make obs-smoke   — boot ticketd with -obs, drive load, assert /metrics
#                      and /trace serve live non-empty data
#   make check       — tier1 + lint + race + fuzz-smoke + obs-smoke

GO ?= go
FUZZTIME ?= 10s
OBS_SMOKE_DIR := $(or $(TMPDIR),/tmp)/obs-smoke

.PHONY: tier1 lint race fuzz-smoke bench bench-matrix obs-smoke check

tier1:
	$(GO) build ./...
	$(GO) test ./...

lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go vet ran)"; \
	fi

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -short -run 'TestModeratorStress|TestDifferential|TestWakeMode' ./internal/moderator/ ./internal/waitq/
	$(GO) test -race -count=2 -run 'TestObsUnderLayerChurn|TestHistogramMergeRace|TestRingNeverBlocks' ./internal/obs/

bench:
	$(GO) run ./cmd/ambench -json BENCH_2.json -obs-json BENCH_3.json

bench-matrix:
	$(GO) run ./cmd/ambench -matrix-json BENCH_4.json

fuzz-smoke:
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeResponse$$' -fuzztime $(FUZZTIME)

# End-to-end introspection smoke: a real ticketd process with the obs
# endpoint enabled, a real ticketcli driving load over amrpc, then the
# HTTP surface must serve non-empty metrics and a non-empty trace dump.
obs-smoke:
	rm -rf $(OBS_SMOKE_DIR) && mkdir -p $(OBS_SMOKE_DIR)
	$(GO) build -o $(OBS_SMOKE_DIR)/ticketd ./cmd/ticketd
	$(GO) build -o $(OBS_SMOKE_DIR)/ticketcli ./cmd/ticketcli
	$(OBS_SMOKE_DIR)/ticketd -addr 127.0.0.1:7941 -obs 127.0.0.1:7942 -obs-sample 1 -audit 0 \
		> $(OBS_SMOKE_DIR)/ticketd.log 2>&1 & echo $$! > $(OBS_SMOKE_DIR)/ticketd.pid
	sh -c 'trap "kill $$(cat $(OBS_SMOKE_DIR)/ticketd.pid) 2>/dev/null" EXIT; \
		for i in $$(seq 1 50); do \
			$(OBS_SMOKE_DIR)/ticketcli -addr 127.0.0.1:7941 open smoke "obs smoke" >/dev/null 2>&1 && break; \
			sleep 0.1; \
		done; \
		$(OBS_SMOKE_DIR)/ticketcli -addr 127.0.0.1:7941 load -n 50 >/dev/null; \
		curl -sf http://127.0.0.1:7942/metrics > $(OBS_SMOKE_DIR)/metrics.txt; \
		curl -sf "http://127.0.0.1:7942/trace?n=32" > $(OBS_SMOKE_DIR)/trace.json; \
		grep -q "^am_admissions_total" $(OBS_SMOKE_DIR)/metrics.txt || { echo "obs-smoke: no admissions in /metrics"; exit 1; }; \
		grep -q "\"op\": *\"admit\"" $(OBS_SMOKE_DIR)/trace.json || { echo "obs-smoke: no admit events in /trace"; exit 1; }; \
		$(OBS_SMOKE_DIR)/ticketcli obs -url http://127.0.0.1:7942 -view summary | grep -q "sampling" || { echo "obs-smoke: ticketcli obs summary failed"; exit 1; }'
	@echo "obs-smoke: OK"

check: tier1 lint race fuzz-smoke obs-smoke
