# Verification stages for the aspect-moderator reproduction.
#
#   make tier1       — build + full test suite (the gating check)
#   make race        — full suite under the race detector
#   make fuzz-smoke  — 10s of coverage-guided fuzzing per wire-decode target
#   make check       — all of the above

GO ?= go
FUZZTIME ?= 10s

.PHONY: tier1 race fuzz-smoke check

tier1:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeResponse$$' -fuzztime $(FUZZTIME)

check: tier1 race fuzz-smoke
