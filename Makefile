# Verification stages for the aspect-moderator reproduction.
#
#   make tier1       — build + full test suite (the gating check)
#   make race        — full suite under the race detector, plus a focused
#                      double-count pass over the sharded-moderator stress
#                      and differential-oracle tests
#   make fuzz-smoke  — 10s of coverage-guided fuzzing per wire-decode target
#   make bench       — regenerate the committed BENCH_2.json baseline
#   make check       — tier1 + race + fuzz-smoke

GO ?= go
FUZZTIME ?= 10s

.PHONY: tier1 race fuzz-smoke bench check

tier1:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -short -run 'TestModeratorStress|TestDifferential|TestWakeMode' ./internal/moderator/ ./internal/waitq/

bench:
	$(GO) run ./cmd/ambench -json BENCH_2.json

fuzz-smoke:
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/amrpc -run '^$$' -fuzz '^FuzzDecodeResponse$$' -fuzztime $(FUZZTIME)

check: tier1 race fuzz-smoke
