package repro_test

// Tier-1 guard for the committed state-handoff baseline: BENCH_6.json
// (the E18 report written by `make bench-statesync`) must parse, declare
// the current schema, and show effect replication staying nearly free on
// the admission hot path. The bound is 3% — far below the 15% the obs and
// shadow hooks are allowed — because the capture hook fires on EVERY
// guarded completion, not a sampled fraction, and the plane's design
// promise is one atomic load, one map lookup, and one lock-free ring
// append. A baseline with overflows bought its throughput by dropping
// captures and must not be merged.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
)

func TestStatesyncBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_6.json")
	if err != nil {
		t.Fatalf("committed state-handoff baseline missing (run `make bench-statesync`): %v", err)
	}
	var rep bench.StatesyncReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_6.json does not parse: %v", err)
	}
	if rep.Schema != bench.StatesyncSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.StatesyncSchema)
	}
	if rep.GoMaxProcs < 1 {
		t.Fatalf("go_max_procs = %d, want >= 1", rep.GoMaxProcs)
	}
	if rep.SinkOffOps <= 0 || rep.SinkOnOps <= 0 {
		t.Fatalf("non-positive throughput: off=%.0f on=%.0f", rep.SinkOffOps, rep.SinkOnOps)
	}
	// The plane promise: capturing and streaming every completion costs a
	// served invocation no more than 3%.
	if rep.OverheadPct > 3.0 {
		t.Fatalf("replication overhead on the plane path = %.1f%%, want <= 3%%", rep.OverheadPct)
	}
	// The hot-path promise: one Capture is one atomic load, one map
	// lookup, and one lock-free ring append — sub-microsecond by a wide
	// margin.
	if rep.CaptureNs <= 0 || rep.CaptureNs > 1000 {
		t.Fatalf("hot-path capture = %.0fns, want (0, 1000]", rep.CaptureNs)
	}
	// The honesty clause: the number only counts if every completion was
	// actually logged and none fell out of the bounded window.
	if rep.Captured == 0 {
		t.Fatal("baseline captured no effects: the sink was never exercised")
	}
	if rep.Overflows != 0 {
		t.Fatalf("baseline dropped %d captures to the overflow counter: the overhead number is dishonest", rep.Overflows)
	}
	// The handoff promise: a graceful release (snapshot + log drain) is a
	// sub-100ms event even at the committed log depth, so lease movement
	// is never gated on a slow flush.
	if rep.HandoffEntries <= 0 || rep.HandoffRounds <= 0 {
		t.Fatalf("handoff measurement missing: entries=%d rounds=%d", rep.HandoffEntries, rep.HandoffRounds)
	}
	if rep.HandoffP50Micros <= 0 || rep.HandoffP50Micros > rep.HandoffMaxMicros {
		t.Fatalf("handoff latencies malformed: p50=%.0fus max=%.0fus", rep.HandoffP50Micros, rep.HandoffMaxMicros)
	}
	if rep.HandoffMaxMicros > 100_000 {
		t.Fatalf("handoff max = %.0fus, want <= 100ms", rep.HandoffMaxMicros)
	}
}
