package repro_test

// Tier-1 guard for the committed shadow-admission baseline: BENCH_5.json
// (the E15 shadow overhead report written by `make bench-shadow`) must
// parse, declare the current schema, and show the engine staying cheap
// and SILENT — the shadow replays a stock workload against the reference
// semantics, so any committed divergence count other than zero means the
// two admission implementations disagreed in production mode and the
// baseline must not be merged.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/moderator"
)

func TestShadowBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_5.json")
	if err != nil {
		t.Fatalf("committed shadow baseline missing (run `make bench-shadow`): %v", err)
	}
	var rep bench.ShadowReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_5.json does not parse: %v", err)
	}
	if rep.Schema != bench.ShadowSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.ShadowSchema)
	}
	if rep.GoMaxProcs < 1 {
		t.Fatalf("go_max_procs = %d, want >= 1", rep.GoMaxProcs)
	}
	if rep.SampleEvery != moderator.DefaultShadowSampleEvery {
		t.Fatalf("sample_every = %d, want the default stride %d",
			rep.SampleEvery, moderator.DefaultShadowSampleEvery)
	}
	if rep.ShadowOffOps <= 0 || rep.ShadowOnOps <= 0 {
		t.Fatalf("non-positive throughput: off=%.0f on=%.0f", rep.ShadowOffOps, rep.ShadowOnOps)
	}
	// The sampling promise: at the default stride the admission path costs
	// no more than 15% — the same bound the obs hooks commit to in
	// BENCH_3.json.
	if rep.OverheadPct > 15.0 {
		t.Fatalf("shadow overhead at 1/%d = %.1f%%, want <= 15%%", rep.SampleEvery, rep.OverheadPct)
	}
	// The safety-net promise: replays happened and none diverged.
	if rep.Sampled == 0 || rep.Replayed == 0 {
		t.Fatalf("baseline sampled %d / replayed %d admissions, want both > 0", rep.Sampled, rep.Replayed)
	}
	if rep.Replayed > rep.Sampled {
		t.Fatalf("replayed %d > sampled %d", rep.Replayed, rep.Sampled)
	}
	if rep.Divergences != 0 {
		t.Fatalf("committed baseline carries %d divergences: live and reference admission "+
			"semantics disagreed on the stock workload", rep.Divergences)
	}
}
